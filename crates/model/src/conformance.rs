//! Trace conformance checking.
//!
//! "This resulting structure, which we call a protocol, has to be a correct
//! implementation of the service. This can be assessed formally, if both the
//! service and protocol are specified using some formal language."
//! (Section 2.) This module provides the trace-level half of that assessment:
//! given a [`ServiceDefinition`] and an observed [`Trace`], it reports every
//! violation of the primitive schemas and behavioural constraints. The
//! state-space half (exhaustive exploration) lives in `svckit-lts`.

use std::collections::BTreeMap;
use std::fmt;

use crate::constraint::{Constraint, ConstraintKind, ConstraintScope};
use crate::sap::Sap;
use crate::service::ServiceDefinition;
use crate::trace::{PrimitiveEvent, Trace};
use crate::value::Value;

/// Options controlling a conformance check.
#[derive(Debug, Clone)]
pub struct CheckOptions {
    /// When `true`, obligations created by liveness constraints
    /// ([`ConstraintKind::EventuallyFollows`]) that are still outstanding at
    /// the end of the trace are reported as *pending* rather than as
    /// violations. Use this for traces cut off mid-run; leave `false`
    /// (the default) for workloads that drain fully.
    pub allow_pending_liveness: bool,
    /// When `true` (the default), every event is validated against its
    /// primitive schema (known primitive, declared role, arity and types).
    pub validate_schema: bool,
}

impl Default for CheckOptions {
    fn default() -> Self {
        CheckOptions {
            allow_pending_liveness: false,
            validate_schema: true,
        }
    }
}

/// A single conformance violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    constraint: Option<String>,
    event_index: Option<usize>,
    message: String,
}

impl Violation {
    /// The violated constraint, rendered, if the violation stems from a
    /// constraint (schema violations have none).
    pub fn constraint(&self) -> Option<&str> {
        self.constraint.as_deref()
    }

    /// Index into the trace of the offending event, when attributable.
    pub fn event_index(&self) -> Option<usize> {
        self.event_index
    }

    /// Human-readable description.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(i) = self.event_index {
            write!(f, "at event {i}: ")?;
        }
        write!(f, "{}", self.message)?;
        if let Some(c) = &self.constraint {
            write!(f, " (violates {c})")?;
        }
        Ok(())
    }
}

/// The outcome of checking a trace against a service definition.
#[derive(Debug, Clone, Default)]
pub struct ConformanceReport {
    violations: Vec<Violation>,
    pending_obligations: usize,
    events_checked: usize,
}

impl ConformanceReport {
    /// `true` when no violation was found.
    pub fn is_conformant(&self) -> bool {
        self.violations.is_empty()
    }

    /// All violations found, in trace order where attributable.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Number of liveness obligations outstanding at the end of the trace
    /// (only populated when [`CheckOptions::allow_pending_liveness`] is set;
    /// otherwise such obligations appear as violations).
    pub fn pending_obligations(&self) -> usize {
        self.pending_obligations
    }

    /// Number of events examined.
    pub fn events_checked(&self) -> usize {
        self.events_checked
    }
}

impl fmt::Display for ConformanceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_conformant() {
            write!(
                f,
                "conformant ({} events, {} pending obligation(s))",
                self.events_checked, self.pending_obligations
            )
        } else {
            writeln!(
                f,
                "NOT conformant: {} violation(s) in {} events",
                self.violations.len(),
                self.events_checked
            )?;
            for v in &self.violations {
                writeln!(f, "  - {v}")?;
            }
            Ok(())
        }
    }
}

/// Scope instance: the partition cell within which occurrences are related.
type Instance = (Option<Sap>, Vec<Value>);

fn instance(scope: ConstraintScope, event: &PrimitiveEvent, key: &[usize]) -> Instance {
    let sap = match scope {
        ConstraintScope::SameSap => Some(event.sap().clone()),
        ConstraintScope::Global => None,
    };
    (sap, event.key(key))
}

/// Checks `trace` against `service`.
///
/// The check is linear in the trace length for each constraint. Violations
/// carry the index of the offending event when one exists; liveness
/// violations (unanswered obligations) are attached to the index of the
/// *triggering* event.
pub fn check_trace(
    service: &ServiceDefinition,
    trace: &Trace,
    options: &CheckOptions,
) -> ConformanceReport {
    let mut report = ConformanceReport {
        events_checked: trace.len(),
        ..ConformanceReport::default()
    };

    if options.validate_schema {
        check_schema(service, trace, &mut report);
    }
    for constraint in service.constraints() {
        check_constraint(constraint, trace, options, &mut report);
    }
    report
        .violations
        .sort_by_key(|v| v.event_index.unwrap_or(usize::MAX));
    report
}

fn check_schema(service: &ServiceDefinition, trace: &Trace, report: &mut ConformanceReport) {
    for (i, event) in trace.iter().enumerate() {
        match service.primitive(event.primitive()) {
            None => report.violations.push(Violation {
                constraint: None,
                event_index: Some(i),
                message: format!(
                    "primitive `{}` is not part of service `{}`",
                    event.primitive(),
                    service.name()
                ),
            }),
            Some(spec) => {
                if let Err(err) = spec.validate_args(event.args()) {
                    report.violations.push(Violation {
                        constraint: None,
                        event_index: Some(i),
                        message: err.to_string(),
                    });
                }
            }
        }
        if service.role(event.sap().role()).is_none() {
            report.violations.push(Violation {
                constraint: None,
                event_index: Some(i),
                message: format!(
                    "access point {} instantiates undeclared role `{}`",
                    event.sap(),
                    event.sap().role()
                ),
            });
        }
    }
}

fn check_constraint(
    constraint: &Constraint,
    trace: &Trace,
    options: &CheckOptions,
    report: &mut ConformanceReport,
) {
    let key = constraint.key();
    match constraint.kind() {
        ConstraintKind::Precedes {
            earlier,
            later,
            scope,
        } => {
            let mut balance: BTreeMap<Instance, usize> = BTreeMap::new();
            for (i, event) in trace.iter().enumerate() {
                if event.primitive() == earlier {
                    *balance.entry(instance(*scope, event, key)).or_insert(0) += 1;
                } else if event.primitive() == later {
                    let inst = instance(*scope, event, key);
                    let entry = balance.entry(inst).or_insert(0);
                    if *entry == 0 {
                        report.violations.push(Violation {
                            constraint: Some(constraint.to_string()),
                            event_index: Some(i),
                            message: format!(
                                "`{later}` occurred without a preceding unmatched `{earlier}`"
                            ),
                        });
                    } else {
                        *entry -= 1;
                    }
                }
            }
        }
        ConstraintKind::After {
            enabler,
            then,
            scope,
        } => {
            let mut enabled: BTreeMap<Instance, ()> = BTreeMap::new();
            for (i, event) in trace.iter().enumerate() {
                if event.primitive() == enabler {
                    enabled.insert(instance(*scope, event, key), ());
                } else if event.primitive() == then
                    && !enabled.contains_key(&instance(*scope, event, key))
                {
                    report.violations.push(Violation {
                        constraint: Some(constraint.to_string()),
                        event_index: Some(i),
                        message: format!("`{then}` occurred before any `{enabler}`"),
                    });
                }
            }
        }
        ConstraintKind::EventuallyFollows {
            trigger,
            response,
            scope,
        } => {
            // Outstanding trigger event indices, FIFO per instance.
            let mut outstanding: BTreeMap<Instance, Vec<usize>> = BTreeMap::new();
            for (i, event) in trace.iter().enumerate() {
                if event.primitive() == trigger {
                    outstanding
                        .entry(instance(*scope, event, key))
                        .or_default()
                        .push(i);
                } else if event.primitive() == response {
                    if let Some(queue) = outstanding.get_mut(&instance(*scope, event, key)) {
                        if !queue.is_empty() {
                            queue.remove(0);
                        }
                    }
                }
            }
            let pending: usize = outstanding.values().map(Vec::len).sum();
            if options.allow_pending_liveness {
                report.pending_obligations += pending;
            } else {
                for (_, queue) in outstanding {
                    for idx in queue {
                        report.violations.push(Violation {
                            constraint: Some(constraint.to_string()),
                            event_index: Some(idx),
                            message: format!(
                                "`{trigger}` was never followed by a matching `{response}`"
                            ),
                        });
                    }
                }
            }
        }
        ConstraintKind::MutualExclusion { acquire, release } => {
            let mut holder: BTreeMap<Vec<Value>, (Sap, usize)> = BTreeMap::new();
            for (i, event) in trace.iter().enumerate() {
                let k = event.key(key);
                if event.primitive() == acquire {
                    if let Some((held_by, since)) = holder.get(&k) {
                        report.violations.push(Violation {
                            constraint: Some(constraint.to_string()),
                            event_index: Some(i),
                            message: format!(
                                "`{acquire}` at {} while already held by {} (since event {})",
                                event.sap(),
                                held_by,
                                since
                            ),
                        });
                    } else {
                        holder.insert(k, (event.sap().clone(), i));
                    }
                } else if event.primitive() == release {
                    match holder.get(&k) {
                        Some((held_by, _)) if held_by == event.sap() => {
                            holder.remove(&k);
                        }
                        Some((held_by, _)) => {
                            report.violations.push(Violation {
                                constraint: Some(constraint.to_string()),
                                event_index: Some(i),
                                message: format!(
                                    "`{release}` at {} but holder is {}",
                                    event.sap(),
                                    held_by
                                ),
                            });
                        }
                        None => {
                            report.violations.push(Violation {
                                constraint: Some(constraint.to_string()),
                                event_index: Some(i),
                                message: format!(
                                    "`{release}` at {} but nothing is held",
                                    event.sap()
                                ),
                            });
                        }
                    }
                }
            }
        }
        ConstraintKind::AtMostOutstanding {
            trigger,
            response,
            limit,
            scope,
        } => {
            let mut outstanding: BTreeMap<Instance, usize> = BTreeMap::new();
            for (i, event) in trace.iter().enumerate() {
                if event.primitive() == trigger {
                    let entry = outstanding.entry(instance(*scope, event, key)).or_insert(0);
                    *entry += 1;
                    if *entry > *limit {
                        report.violations.push(Violation {
                            constraint: Some(constraint.to_string()),
                            event_index: Some(i),
                            message: format!(
                                "more than {limit} outstanding `{trigger}` obligation(s)"
                            ),
                        });
                    }
                } else if event.primitive() == response {
                    let entry = outstanding.entry(instance(*scope, event, key)).or_insert(0);
                    *entry = entry.saturating_sub(1);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::PartId;
    use crate::primitive::{Direction, PrimitiveSpec};
    use crate::time::Instant;

    fn floor_control() -> ServiceDefinition {
        ServiceDefinition::builder("floor-control")
            .role("subscriber", 2, usize::MAX)
            .primitive(PrimitiveSpec::new("request", Direction::FromUser).param_id("resid"))
            .primitive(PrimitiveSpec::new("granted", Direction::ToUser).param_id("resid"))
            .primitive(PrimitiveSpec::new("free", Direction::FromUser).param_id("resid"))
            .constraint(
                Constraint::eventually_follows("request", "granted", ConstraintScope::SameSap)
                    .keyed(&[0]),
            )
            .constraint(
                Constraint::precedes("granted", "free", ConstraintScope::SameSap).keyed(&[0]),
            )
            .constraint(
                Constraint::precedes("request", "granted", ConstraintScope::SameSap).keyed(&[0]),
            )
            .constraint(Constraint::mutual_exclusion("granted", "free").keyed(&[0]))
            .build()
            .unwrap()
    }

    fn ev(t: u64, part: u64, prim: &str, res: u64) -> PrimitiveEvent {
        PrimitiveEvent::new(
            Instant::from_micros(t),
            Sap::new("subscriber", PartId::new(part)),
            prim,
            vec![Value::Id(res)],
        )
    }

    #[test]
    fn conformant_interleaved_trace_passes() {
        let trace: Trace = [
            ev(1, 1, "request", 7),
            ev(2, 2, "request", 7),
            ev(3, 1, "granted", 7),
            ev(4, 1, "free", 7),
            ev(5, 2, "granted", 7),
            ev(6, 2, "free", 7),
        ]
        .into_iter()
        .collect();
        let report = check_trace(&floor_control(), &trace, &CheckOptions::default());
        assert!(report.is_conformant(), "{report}");
    }

    #[test]
    fn double_grant_violates_mutual_exclusion() {
        let trace: Trace = [
            ev(1, 1, "request", 7),
            ev(2, 2, "request", 7),
            ev(3, 1, "granted", 7),
            ev(4, 2, "granted", 7), // resource 7 still held by part 1
            ev(5, 1, "free", 7),
            ev(6, 2, "free", 7),
        ]
        .into_iter()
        .collect();
        let report = check_trace(&floor_control(), &trace, &CheckOptions::default());
        assert!(!report.is_conformant());
        let v = &report.violations()[0];
        assert_eq!(v.event_index(), Some(3));
        assert!(v.message().contains("already held"), "{}", v.message());
    }

    #[test]
    fn distinct_resources_do_not_exclude_each_other() {
        let trace: Trace = [
            ev(1, 1, "request", 7),
            ev(2, 2, "request", 8),
            ev(3, 1, "granted", 7),
            ev(4, 2, "granted", 8),
            ev(5, 1, "free", 7),
            ev(6, 2, "free", 8),
        ]
        .into_iter()
        .collect();
        let report = check_trace(&floor_control(), &trace, &CheckOptions::default());
        assert!(report.is_conformant(), "{report}");
    }

    #[test]
    fn free_before_grant_violates_precedence() {
        let trace: Trace = [ev(1, 1, "free", 7)].into_iter().collect();
        let report = check_trace(&floor_control(), &trace, &CheckOptions::default());
        assert!(report
            .violations()
            .iter()
            .any(|v| v.message().contains("without a preceding")));
    }

    #[test]
    fn unanswered_request_is_liveness_violation_by_default() {
        let trace: Trace = [ev(1, 1, "request", 7)].into_iter().collect();
        let report = check_trace(&floor_control(), &trace, &CheckOptions::default());
        assert!(!report.is_conformant());
        assert!(report.violations()[0].message().contains("never followed"));
    }

    #[test]
    fn unanswered_request_is_pending_when_allowed() {
        let trace: Trace = [ev(1, 1, "request", 7)].into_iter().collect();
        let options = CheckOptions {
            allow_pending_liveness: true,
            ..CheckOptions::default()
        };
        let report = check_trace(&floor_control(), &trace, &options);
        assert!(report.is_conformant());
        assert_eq!(report.pending_obligations(), 1);
    }

    #[test]
    fn unknown_primitive_is_schema_violation() {
        let trace: Trace = [ev(1, 1, "steal", 7)].into_iter().collect();
        let report = check_trace(&floor_control(), &trace, &CheckOptions::default());
        assert!(!report.is_conformant());
        assert!(report.violations()[0]
            .message()
            .contains("not part of service"));
        assert!(report.violations()[0].constraint().is_none());
    }

    #[test]
    fn wrong_arity_is_schema_violation() {
        let trace: Trace = [PrimitiveEvent::new(
            Instant::from_micros(1),
            Sap::new("subscriber", PartId::new(1)),
            "request",
            vec![],
        )]
        .into_iter()
        .collect();
        let report = check_trace(&floor_control(), &trace, &CheckOptions::default());
        assert!(!report.is_conformant());
        assert!(report.violations()[0].message().contains("argument"));
    }

    #[test]
    fn undeclared_role_is_schema_violation() {
        let trace: Trace = [PrimitiveEvent::new(
            Instant::from_micros(1),
            Sap::new("intruder", PartId::new(1)),
            "request",
            vec![Value::Id(7)],
        )]
        .into_iter()
        .collect();
        let report = check_trace(&floor_control(), &trace, &CheckOptions::default());
        assert!(report
            .violations()
            .iter()
            .any(|v| v.message().contains("undeclared role")));
    }

    #[test]
    fn release_by_non_holder_is_violation() {
        let trace: Trace = [
            ev(1, 1, "request", 7),
            ev(2, 1, "granted", 7),
            ev(3, 2, "request", 7),
            // part 2 frees a resource held by part 1 — mutual exclusion broken
            ev(4, 2, "free", 7),
            ev(5, 1, "free", 7),
            ev(6, 2, "granted", 7),
            ev(7, 2, "free", 7),
        ]
        .into_iter()
        .collect();
        let report = check_trace(&floor_control(), &trace, &CheckOptions::default());
        assert!(report
            .violations()
            .iter()
            .any(|v| v.message().contains("but holder is")));
    }

    #[test]
    fn after_is_non_consuming() {
        let svc = ServiceDefinition::builder("chat")
            .role("member", 1, usize::MAX)
            .primitive(PrimitiveSpec::new("join", Direction::FromUser))
            .primitive(PrimitiveSpec::new("say", Direction::FromUser))
            .constraint(Constraint::after("join", "say", ConstraintScope::SameSap))
            .build()
            .unwrap();
        let sap = Sap::new("member", PartId::new(1));
        let mk = |t, p: &str| PrimitiveEvent::new(Instant::from_micros(t), sap.clone(), p, vec![]);
        // One join enables any number of says.
        let ok: Trace = [mk(1, "join"), mk(2, "say"), mk(3, "say"), mk(4, "say")]
            .into_iter()
            .collect();
        assert!(check_trace(&svc, &ok, &CheckOptions::default()).is_conformant());
        // Saying before joining is a violation.
        let bad: Trace = [mk(1, "say"), mk(2, "join")].into_iter().collect();
        let report = check_trace(&svc, &bad, &CheckOptions::default());
        assert!(report.violations()[0].message().contains("before any"));
    }

    #[test]
    fn after_scope_separates_saps() {
        let svc = ServiceDefinition::builder("chat")
            .role("member", 1, usize::MAX)
            .primitive(PrimitiveSpec::new("join", Direction::FromUser))
            .primitive(PrimitiveSpec::new("say", Direction::FromUser))
            .constraint(Constraint::after("join", "say", ConstraintScope::SameSap))
            .build()
            .unwrap();
        let mk = |t, part, p: &str| {
            PrimitiveEvent::new(
                Instant::from_micros(t),
                Sap::new("member", PartId::new(part)),
                p,
                vec![],
            )
        };
        // Part 1 joined; part 2 did not — part 2's say is the violation.
        let trace: Trace = [mk(1, 1, "join"), mk(2, 2, "say")].into_iter().collect();
        let report = check_trace(&svc, &trace, &CheckOptions::default());
        assert_eq!(report.violations().len(), 1);
        assert_eq!(report.violations()[0].event_index(), Some(1));
    }

    #[test]
    fn at_most_outstanding_limits_duplicate_requests() {
        let svc = ServiceDefinition::builder("s")
            .role("u", 1, usize::MAX)
            .primitive(PrimitiveSpec::new("req", Direction::FromUser).param_id("r"))
            .primitive(PrimitiveSpec::new("ack", Direction::ToUser).param_id("r"))
            .constraint(
                Constraint::at_most_outstanding("req", "ack", 1, ConstraintScope::SameSap)
                    .keyed(&[0]),
            )
            .build()
            .unwrap();
        let sap = Sap::new("u", PartId::new(1));
        let mk = |t, p: &str| {
            PrimitiveEvent::new(Instant::from_micros(t), sap.clone(), p, vec![Value::Id(1)])
        };
        let ok: Trace = [mk(1, "req"), mk(2, "ack"), mk(3, "req"), mk(4, "ack")]
            .into_iter()
            .collect();
        assert!(check_trace(&svc, &ok, &CheckOptions::default()).is_conformant());
        let bad: Trace = [mk(1, "req"), mk(2, "req")].into_iter().collect();
        let report = check_trace(&svc, &bad, &CheckOptions::default());
        assert!(report
            .violations()
            .iter()
            .any(|v| v.message().contains("more than 1 outstanding")));
    }

    #[test]
    fn violations_are_sorted_by_event_index() {
        let trace: Trace = [ev(1, 1, "free", 7), ev(2, 1, "steal", 7)]
            .into_iter()
            .collect();
        let report = check_trace(&floor_control(), &trace, &CheckOptions::default());
        let indices: Vec<_> = report
            .violations()
            .iter()
            .filter_map(Violation::event_index)
            .collect();
        let mut sorted = indices.clone();
        sorted.sort_unstable();
        assert_eq!(indices, sorted);
    }

    #[test]
    fn report_display_mentions_outcome() {
        let trace = Trace::new();
        let report = check_trace(&floor_control(), &trace, &CheckOptions::default());
        assert!(report.to_string().starts_with("conformant"));
    }

    #[test]
    fn empty_constraint_set_only_checks_schemas() {
        let svc = ServiceDefinition::builder("unconstrained")
            .role("u", 1, usize::MAX)
            .primitive(PrimitiveSpec::new("ping", Direction::FromUser))
            .build()
            .unwrap();
        let sap = Sap::new("u", PartId::new(1));
        let mk = |t, p: &str| PrimitiveEvent::new(Instant::from_micros(t), sap.clone(), p, vec![]);
        // Without constraints, any schema-valid event order is conformant.
        let ok: Trace = [mk(1, "ping"), mk(2, "ping"), mk(3, "ping")]
            .into_iter()
            .collect();
        let report = check_trace(&svc, &ok, &CheckOptions::default());
        assert!(report.is_conformant(), "{report}");
        assert_eq!(report.events_checked(), 3);
        // …but the schema pass still runs.
        let bad: Trace = [mk(1, "pong")].into_iter().collect();
        let report = check_trace(&svc, &bad, &CheckOptions::default());
        assert_eq!(report.violations().len(), 1);
        assert!(report.violations()[0].constraint().is_none());
    }

    #[test]
    fn single_primitive_universe_with_self_referential_liveness() {
        // A one-primitive universe where the primitive triggers an
        // obligation only itself could answer: occurrences are classified
        // as triggers first, so they never self-satisfy — every `tick`
        // stays an unanswered obligation.
        let svc = ServiceDefinition::builder("clock")
            .role("u", 1, usize::MAX)
            .primitive(PrimitiveSpec::new("tick", Direction::FromUser))
            .constraint(Constraint::eventually_follows(
                "tick",
                "tick",
                ConstraintScope::SameSap,
            ))
            .build()
            .unwrap();
        let sap = Sap::new("u", PartId::new(1));
        let mk = |t| PrimitiveEvent::new(Instant::from_micros(t), sap.clone(), "tick", vec![]);
        let trace: Trace = [mk(1), mk(2)].into_iter().collect();
        let report = check_trace(&svc, &trace, &CheckOptions::default());
        assert_eq!(report.violations().len(), 2);
        // Under pending-liveness both stay open rather than violating.
        let options = CheckOptions {
            allow_pending_liveness: true,
            ..CheckOptions::default()
        };
        let report = check_trace(&svc, &trace, &options);
        assert!(report.is_conformant());
        assert_eq!(report.pending_obligations(), 2);
    }

    #[test]
    fn constraint_on_undeclared_sap_and_primitive_is_vacuous_at_trace_level() {
        // A constraint referencing a primitive the service never declares
        // is rejected when the definition is built — it cannot even reach
        // the trace checker.
        let err = ServiceDefinition::builder("dangling")
            .role("u", 1, usize::MAX)
            .primitive(PrimitiveSpec::new("ping", Direction::FromUser))
            .constraint(Constraint::precedes(
                "open",
                "close",
                ConstraintScope::SameSap,
            ))
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("open"), "{err}");

        // An event *at an undeclared SAP* is still fed through the
        // constraint pass: the mutual-exclusion holder map keys on the
        // event's SAP as-is, so the double acquire is caught even though
        // the schema pass already flags the role.
        let svc = ServiceDefinition::builder("mutex")
            .role("u", 1, usize::MAX)
            .primitive(PrimitiveSpec::new("acquire", Direction::FromUser))
            .primitive(PrimitiveSpec::new("release", Direction::FromUser))
            .constraint(Constraint::mutual_exclusion("acquire", "release"))
            .build()
            .unwrap();
        let intruder = Sap::new("ghost", PartId::new(9));
        let mk =
            |t, p: &str| PrimitiveEvent::new(Instant::from_micros(t), intruder.clone(), p, vec![]);
        let trace: Trace = [mk(1, "acquire"), mk(2, "acquire")].into_iter().collect();
        let report = check_trace(&svc, &trace, &CheckOptions::default());
        let role_violations = report
            .violations()
            .iter()
            .filter(|v| v.message().contains("undeclared role"))
            .count();
        assert_eq!(role_violations, 2, "{report}");
        assert!(
            report
                .violations()
                .iter()
                .any(|v| v.message().contains("already held")),
            "{report}"
        );
    }
}
