//! Behavioural constraints between service primitives.
//!
//! Section 4.2 of the paper identifies two categories of relations between
//! service primitives:
//!
//! * **Local constraints** relate occurrences at the *same* service access
//!   point — "the execution of `granted` eventually follows the execution of
//!   `request` (for a given resource identification)".
//! * **Remote constraints** relate occurrences across access points — "a
//!   resource is only granted to one subscriber at a time".
//!
//! [`Constraint`] encodes these as checkable predicates over [`crate::Trace`]s.
//! The "(for a given resource identification)" part is captured by a
//! *correlation key*: a list of argument positions whose values must match
//! for two occurrences to be related.

use std::fmt;

/// Whether a constraint relates occurrences at one access point or across
/// all of them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConstraintScope {
    /// Occurrences are related only when they happen at the same SAP
    /// (a *local* constraint in the paper's terms).
    SameSap,
    /// Occurrences are related across all SAPs (a *remote* constraint).
    Global,
}

impl fmt::Display for ConstraintScope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConstraintScope::SameSap => write!(f, "local"),
            ConstraintScope::Global => write!(f, "remote"),
        }
    }
}

/// The relation a constraint imposes.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConstraintKind {
    /// Liveness: every occurrence of `trigger` is eventually followed by a
    /// matching occurrence of `response` (1–1 matching in order).
    EventuallyFollows {
        /// The primitive that creates the obligation.
        trigger: String,
        /// The primitive that discharges it.
        response: String,
        /// Matching scope.
        scope: ConstraintScope,
    },
    /// Safety, non-consuming: `then` may occur only once at least one
    /// `enabler` has occurred (in the same scope instance and key). Unlike
    /// [`ConstraintKind::Precedes`], the enabling occurrence is not used up:
    /// one `join` enables any number of `say`s.
    After {
        /// The enabling primitive.
        enabler: String,
        /// The enabled primitive.
        then: String,
        /// Matching scope.
        scope: ConstraintScope,
    },
    /// Safety: at every prefix of the trace, occurrences of `later` never
    /// outnumber occurrences of `earlier` (so each `later` is "paid for" by a
    /// preceding `earlier`).
    Precedes {
        /// The enabling primitive.
        earlier: String,
        /// The enabled primitive.
        later: String,
        /// Matching scope.
        scope: ConstraintScope,
    },
    /// Safety, inherently remote: between an `acquire` at some SAP and the
    /// matching `release` at that same SAP, no other SAP may `acquire` for the
    /// same key. This is the paper's "a resource is only granted to one
    /// subscriber at a time".
    MutualExclusion {
        /// The primitive that takes hold of the keyed entity.
        acquire: String,
        /// The primitive that releases it.
        release: String,
    },
    /// Safety: for each scope instance and key, at most `limit` obligations
    /// created by `trigger` may be outstanding (not yet discharged by
    /// `response`) at any point. `limit = 1` forbids, e.g., re-requesting a
    /// resource before the previous request is answered.
    AtMostOutstanding {
        /// The obligation-creating primitive.
        trigger: String,
        /// The obligation-discharging primitive.
        response: String,
        /// Maximum simultaneous obligations.
        limit: usize,
        /// Matching scope.
        scope: ConstraintScope,
    },
}

impl ConstraintKind {
    /// The primitive names this constraint refers to.
    pub fn referenced_primitives(&self) -> [&str; 2] {
        match self {
            ConstraintKind::EventuallyFollows {
                trigger, response, ..
            } => [trigger, response],
            ConstraintKind::After { enabler, then, .. } => [enabler, then],
            ConstraintKind::Precedes { earlier, later, .. } => [earlier, later],
            ConstraintKind::MutualExclusion { acquire, release } => [acquire, release],
            ConstraintKind::AtMostOutstanding {
                trigger, response, ..
            } => [trigger, response],
        }
    }

    /// Whether this constraint is local or remote in the paper's sense.
    pub fn scope(&self) -> ConstraintScope {
        match self {
            ConstraintKind::EventuallyFollows { scope, .. }
            | ConstraintKind::After { scope, .. }
            | ConstraintKind::Precedes { scope, .. }
            | ConstraintKind::AtMostOutstanding { scope, .. } => *scope,
            ConstraintKind::MutualExclusion { .. } => ConstraintScope::Global,
        }
    }
}

impl fmt::Display for ConstraintKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConstraintKind::EventuallyFollows {
                trigger,
                response,
                scope,
            } => write!(f, "{scope}: `{response}` eventually follows `{trigger}`"),
            ConstraintKind::After {
                enabler,
                then,
                scope,
            } => write!(f, "{scope}: `{then}` only after `{enabler}`"),
            ConstraintKind::Precedes {
                earlier,
                later,
                scope,
            } => write!(f, "{scope}: `{earlier}` precedes `{later}`"),
            ConstraintKind::MutualExclusion { acquire, release } => write!(
                f,
                "remote: at most one holder between `{acquire}` and `{release}`"
            ),
            ConstraintKind::AtMostOutstanding {
                trigger,
                response,
                limit,
                scope,
            } => write!(
                f,
                "{scope}: at most {limit} outstanding `{trigger}` before `{response}`"
            ),
        }
    }
}

/// A behavioural constraint with its correlation key.
///
/// The key is a list of argument positions (applied to *both* related
/// primitives, which therefore must carry the correlating value at the same
/// positions — as `resid` does throughout the floor-control service). An
/// empty key correlates all occurrences.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Constraint {
    kind: ConstraintKind,
    key: Vec<usize>,
}

impl Constraint {
    /// Creates a constraint from a kind, with an empty correlation key.
    pub fn new(kind: ConstraintKind) -> Self {
        Constraint {
            kind,
            key: Vec::new(),
        }
    }

    /// `response` eventually follows `trigger` (liveness).
    pub fn eventually_follows(
        trigger: impl Into<String>,
        response: impl Into<String>,
        scope: ConstraintScope,
    ) -> Self {
        Constraint::new(ConstraintKind::EventuallyFollows {
            trigger: trigger.into(),
            response: response.into(),
            scope,
        })
    }

    /// `then` only after at least one `enabler` (non-consuming safety).
    pub fn after(
        enabler: impl Into<String>,
        then: impl Into<String>,
        scope: ConstraintScope,
    ) -> Self {
        Constraint::new(ConstraintKind::After {
            enabler: enabler.into(),
            then: then.into(),
            scope,
        })
    }

    /// `earlier` precedes `later` (safety).
    pub fn precedes(
        earlier: impl Into<String>,
        later: impl Into<String>,
        scope: ConstraintScope,
    ) -> Self {
        Constraint::new(ConstraintKind::Precedes {
            earlier: earlier.into(),
            later: later.into(),
            scope,
        })
    }

    /// At most one SAP holds between `acquire` and `release` (remote safety).
    pub fn mutual_exclusion(acquire: impl Into<String>, release: impl Into<String>) -> Self {
        Constraint::new(ConstraintKind::MutualExclusion {
            acquire: acquire.into(),
            release: release.into(),
        })
    }

    /// At most `limit` outstanding `trigger` obligations before `response`.
    pub fn at_most_outstanding(
        trigger: impl Into<String>,
        response: impl Into<String>,
        limit: usize,
        scope: ConstraintScope,
    ) -> Self {
        Constraint::new(ConstraintKind::AtMostOutstanding {
            trigger: trigger.into(),
            response: response.into(),
            limit,
            scope,
        })
    }

    /// Sets the correlation key to the given argument positions
    /// (builder-style).
    #[must_use]
    pub fn keyed(mut self, key: &[usize]) -> Self {
        self.key = key.to_vec();
        self
    }

    /// The relation imposed.
    pub fn kind(&self) -> &ConstraintKind {
        &self.kind
    }

    /// The correlation-key argument positions.
    pub fn key(&self) -> &[usize] {
        &self.key
    }
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.kind)?;
        if !self.key.is_empty() {
            write!(f, " keyed on args {:?}", self.key)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn referenced_primitives_are_exposed() {
        let c = Constraint::eventually_follows("request", "granted", ConstraintScope::SameSap);
        assert_eq!(c.kind().referenced_primitives(), ["request", "granted"]);
        let m = Constraint::mutual_exclusion("granted", "free");
        assert_eq!(m.kind().referenced_primitives(), ["granted", "free"]);
    }

    #[test]
    fn mutual_exclusion_is_always_remote() {
        let m = Constraint::mutual_exclusion("granted", "free");
        assert_eq!(m.kind().scope(), ConstraintScope::Global);
    }

    #[test]
    fn display_mentions_category_and_key() {
        let c = Constraint::precedes("granted", "free", ConstraintScope::SameSap).keyed(&[0]);
        let s = c.to_string();
        assert!(s.contains("local"), "{s}");
        assert!(s.contains("keyed on args [0]"), "{s}");
    }

    #[test]
    fn keyed_replaces_key() {
        let c = Constraint::precedes("a", "b", ConstraintScope::Global)
            .keyed(&[1])
            .keyed(&[0, 2]);
        assert_eq!(c.key(), &[0, 2]);
    }
}
