//! Error types for the metamodel.

use std::error::Error;
use std::fmt;

/// Errors produced when building or validating models.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ModelError {
    /// A primitive name was declared more than once in a service definition.
    DuplicatePrimitive {
        /// The offending primitive name.
        name: String,
    },
    /// A role name was declared more than once in a service definition.
    DuplicateRole {
        /// The offending role name.
        name: String,
    },
    /// A constraint references a primitive that is not declared.
    UnknownPrimitive {
        /// The undeclared primitive name.
        name: String,
        /// Where the reference occurred (e.g. the constraint description).
        context: String,
    },
    /// A constraint key index exceeds the arity of a referenced primitive.
    KeyIndexOutOfRange {
        /// The referenced primitive.
        primitive: String,
        /// The out-of-range index.
        index: usize,
        /// The primitive arity.
        arity: usize,
    },
    /// A service definition declares no roles.
    NoRoles,
    /// An event carried the wrong number of arguments for its primitive.
    ArityMismatch {
        /// The primitive name.
        primitive: String,
        /// Declared parameter count.
        expected: usize,
        /// Supplied argument count.
        actual: usize,
    },
    /// A [`Value`](crate::Value) payload was requested as the wrong variant
    /// (the typed-error counterpart of the `Option`-returning accessors).
    ValueKindMismatch {
        /// The requested variant.
        expected: &'static str,
        /// The value's actual variant.
        actual: &'static str,
    },
    /// An event argument did not inhabit the declared parameter type.
    TypeMismatch {
        /// The primitive name.
        primitive: String,
        /// The parameter name.
        param: String,
        /// The declared type.
        expected: String,
        /// The supplied value's type.
        actual: String,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::DuplicatePrimitive { name } => {
                write!(f, "primitive `{name}` declared more than once")
            }
            ModelError::DuplicateRole { name } => {
                write!(f, "role `{name}` declared more than once")
            }
            ModelError::UnknownPrimitive { name, context } => {
                write!(f, "unknown primitive `{name}` referenced by {context}")
            }
            ModelError::KeyIndexOutOfRange {
                primitive,
                index,
                arity,
            } => write!(
                f,
                "constraint key index {index} out of range for `{primitive}` (arity {arity})"
            ),
            ModelError::NoRoles => write!(f, "service definition declares no roles"),
            ModelError::ArityMismatch {
                primitive,
                expected,
                actual,
            } => write!(
                f,
                "`{primitive}` expects {expected} argument(s), got {actual}"
            ),
            ModelError::ValueKindMismatch { expected, actual } => {
                write!(f, "value kind mismatch: expected {expected}, got {actual}")
            }
            ModelError::TypeMismatch {
                primitive,
                param,
                expected,
                actual,
            } => write!(
                f,
                "`{primitive}` parameter `{param}` expects {expected}, got {actual}"
            ),
        }
    }
}

impl Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ModelError>();
    }

    #[test]
    fn display_is_lowercase_without_trailing_punctuation() {
        let e = ModelError::NoRoles;
        let s = e.to_string();
        assert!(s.starts_with(char::is_lowercase));
        assert!(!s.ends_with('.'));
    }
}
