//! Newtype identities used throughout the kit.
//!
//! Following C-NEWTYPE, each kind of identity gets its own type so that a
//! [`ResourceId`] can never be confused with a [`SubscriberId`] even though
//! both are small integers on the wire.

use std::fmt;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(u64);

        impl $name {
            /// Creates an identity from its raw numeric value.
            pub const fn new(raw: u64) -> Self {
                Self(raw)
            }

            /// Returns the raw numeric value.
            pub const fn raw(self) -> u64 {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u64> for $name {
            fn from(raw: u64) -> Self {
                Self(raw)
            }
        }

        impl From<$name> for u64 {
            fn from(id: $name) -> u64 {
                id.0
            }
        }
    };
}

define_id!(
    /// Identity of an application part (a component, a user part, or a
    /// protocol entity host). In the paper's Figure 1 these are the
    /// "app. part" boxes.
    PartId,
    "part-"
);

define_id!(
    /// Identity of a shared resource in coordination problems such as the
    /// floor-control example of Section 4.
    ResourceId,
    "res-"
);

define_id!(
    /// Identity of a subscriber in the floor-control example. The paper notes
    /// that "the identification of the subscriber is implied by the
    /// identification of the access point"; we keep an explicit id for the
    /// middleware solutions, where it travels as an operation parameter.
    SubscriberId,
    "sub-"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_distinct_types_with_raw_roundtrip() {
        let p = PartId::new(7);
        assert_eq!(p.raw(), 7);
        assert_eq!(u64::from(p), 7);
        assert_eq!(PartId::from(7u64), p);
    }

    #[test]
    fn display_uses_prefix() {
        assert_eq!(PartId::new(3).to_string(), "part-3");
        assert_eq!(ResourceId::new(4).to_string(), "res-4");
        assert_eq!(SubscriberId::new(5).to_string(), "sub-5");
    }

    #[test]
    fn ordering_follows_raw_value() {
        assert!(ResourceId::new(1) < ResourceId::new(2));
        assert_eq!(ResourceId::default(), ResourceId::new(0));
    }
}
