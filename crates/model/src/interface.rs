//! Middleware-centred modelling vocabulary.
//!
//! In the middleware-centred paradigm (Section 3), "design methods … consist
//! of partitioning the application into application parts and defining the
//! interconnection aspects by defining interfaces between parts", where "the
//! available constructs to build interfaces are constrained by the
//! interaction patterns supported by the targeted platform".
//!
//! [`InterfaceDef`] models such an interface, and [`InteractionPattern`]
//! enumerates the pattern classes the paper names (request/response, message
//! passing, message queues) plus publish/subscribe, which the messaging-based
//! branch of Figure 10 (JMS) requires.

use std::fmt;

use crate::error::ModelError;
use crate::primitive::{ParamSpec, ValueType};
use crate::value::Value;

/// A class of interaction pattern offered by a middleware platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[non_exhaustive]
pub enum InteractionPattern {
    /// Synchronous operation invocation with a result (RPC/remote
    /// invocation — the paper's "request/response").
    RequestResponse,
    /// Fire-and-forget operation invocation ("message passing").
    Oneway,
    /// Point-to-point message queues.
    MessageQueue,
    /// Topic-based publish/subscribe.
    PublishSubscribe,
}

impl InteractionPattern {
    /// All pattern classes, in a stable order.
    pub const ALL: [InteractionPattern; 4] = [
        InteractionPattern::RequestResponse,
        InteractionPattern::Oneway,
        InteractionPattern::MessageQueue,
        InteractionPattern::PublishSubscribe,
    ];
}

impl fmt::Display for InteractionPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InteractionPattern::RequestResponse => write!(f, "request/response"),
            InteractionPattern::Oneway => write!(f, "oneway"),
            InteractionPattern::MessageQueue => write!(f, "message-queue"),
            InteractionPattern::PublishSubscribe => write!(f, "publish/subscribe"),
        }
    }
}

/// Signature of an operation on a component interface.
///
/// # Example
///
/// The callback-based floor-control controller (Figure 4 (a)):
///
/// ```
/// use svckit_model::{OperationSig, ValueType, InterfaceDef};
///
/// let controller = InterfaceDef::new("Controller")
///     .operation(
///         OperationSig::oneway("request_permission")
///             .param("subid", ValueType::Id)
///             .param("resid", ValueType::Id),
///     )
///     .operation(OperationSig::oneway("free").param("subid", ValueType::Id));
/// assert_eq!(controller.operations().len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OperationSig {
    name: String,
    params: Vec<ParamSpec>,
    returns: ValueType,
    oneway: bool,
}

impl OperationSig {
    /// Creates a request/response operation returning `returns`.
    pub fn returning(name: impl Into<String>, returns: ValueType) -> Self {
        OperationSig {
            name: name.into(),
            params: Vec::new(),
            returns,
            oneway: false,
        }
    }

    /// Creates a void request/response operation (invocation still blocks
    /// until the operation completes, as with a CORBA `void` operation).
    pub fn void(name: impl Into<String>) -> Self {
        Self::returning(name, ValueType::Unit)
    }

    /// Creates a oneway (fire-and-forget) operation.
    pub fn oneway(name: impl Into<String>) -> Self {
        OperationSig {
            name: name.into(),
            params: Vec::new(),
            returns: ValueType::Unit,
            oneway: true,
        }
    }

    /// Adds a parameter (builder-style).
    #[must_use]
    pub fn param(mut self, name: impl Into<String>, ty: ValueType) -> Self {
        self.params.push(ParamSpec::new(name, ty));
        self
    }

    /// The operation name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The parameters, positionally.
    pub fn params(&self) -> &[ParamSpec] {
        &self.params
    }

    /// The result type ([`ValueType::Unit`] for void and oneway operations).
    pub fn returns(&self) -> &ValueType {
        &self.returns
    }

    /// Whether the operation is fire-and-forget.
    pub fn is_oneway(&self) -> bool {
        self.oneway
    }

    /// The interaction pattern this operation requires from a platform.
    pub fn required_pattern(&self) -> InteractionPattern {
        if self.oneway {
            InteractionPattern::Oneway
        } else {
            InteractionPattern::RequestResponse
        }
    }

    /// Validates an argument vector against the parameter schema.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::ArityMismatch`] or [`ModelError::TypeMismatch`]
    /// exactly as [`crate::PrimitiveSpec::validate_args`] does.
    pub fn validate_args(&self, args: &[Value]) -> Result<(), ModelError> {
        if args.len() != self.params.len() {
            return Err(ModelError::ArityMismatch {
                primitive: self.name.clone(),
                expected: self.params.len(),
                actual: args.len(),
            });
        }
        for (param, value) in self.params.iter().zip(args) {
            if !param.ty().admits(value) {
                return Err(ModelError::TypeMismatch {
                    primitive: self.name.clone(),
                    param: param.name().to_owned(),
                    expected: param.ty().to_string(),
                    actual: value.type_name().to_owned(),
                });
            }
        }
        Ok(())
    }

    /// Validates a result value against the declared return type.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::TypeMismatch`] when the value does not inhabit
    /// the return type.
    pub fn validate_result(&self, value: &Value) -> Result<(), ModelError> {
        if self.returns.admits(value) {
            Ok(())
        } else {
            Err(ModelError::TypeMismatch {
                primitive: self.name.clone(),
                param: "<result>".to_owned(),
                expected: self.returns.to_string(),
                actual: value.type_name().to_owned(),
            })
        }
    }
}

impl fmt::Display for OperationSig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.oneway {
            write!(f, "oneway ")?;
        }
        write!(f, "{} {}(", self.returns, self.name)?;
        for (i, p) in self.params.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, ")")
    }
}

/// A named component interface: a set of operations.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct InterfaceDef {
    name: String,
    operations: Vec<OperationSig>,
}

impl InterfaceDef {
    /// Creates an empty interface.
    pub fn new(name: impl Into<String>) -> Self {
        InterfaceDef {
            name: name.into(),
            operations: Vec::new(),
        }
    }

    /// Adds an operation (builder-style).
    #[must_use]
    pub fn operation(mut self, op: OperationSig) -> Self {
        self.operations.push(op);
        self
    }

    /// The interface name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The operations.
    pub fn operations(&self) -> &[OperationSig] {
        &self.operations
    }

    /// Looks up an operation by name.
    pub fn find(&self, name: &str) -> Option<&OperationSig> {
        self.operations.iter().find(|o| o.name() == name)
    }

    /// The set of interaction patterns this interface requires from a
    /// platform (deduplicated, stable order).
    pub fn required_patterns(&self) -> Vec<InteractionPattern> {
        let mut patterns: Vec<InteractionPattern> = self
            .operations
            .iter()
            .map(OperationSig::required_pattern)
            .collect();
        patterns.sort_unstable();
        patterns.dedup();
        patterns
    }
}

impl fmt::Display for InterfaceDef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "interface {} {{", self.name)?;
        for op in &self.operations {
            writeln!(f, "  {op};")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller() -> InterfaceDef {
        InterfaceDef::new("Controller")
            .operation(
                OperationSig::void("request_permission")
                    .param("subid", ValueType::Id)
                    .param("resid", ValueType::Id),
            )
            .operation(
                OperationSig::returning("is_available", ValueType::Bool)
                    .param("resid", ValueType::Id),
            )
            .operation(OperationSig::oneway("free").param("subid", ValueType::Id))
    }

    #[test]
    fn find_locates_operations() {
        let iface = controller();
        assert!(iface.find("is_available").is_some());
        assert!(iface.find("grant").is_none());
    }

    #[test]
    fn required_patterns_deduplicate() {
        let iface = controller();
        assert_eq!(
            iface.required_patterns(),
            vec![
                InteractionPattern::RequestResponse,
                InteractionPattern::Oneway
            ]
        );
    }

    #[test]
    fn validate_args_and_result() {
        let op = controller().find("is_available").unwrap().clone();
        assert!(op.validate_args(&[Value::Id(1)]).is_ok());
        assert!(op.validate_args(&[]).is_err());
        assert!(op.validate_result(&Value::Bool(true)).is_ok());
        assert!(op.validate_result(&Value::Id(1)).is_err());
    }

    #[test]
    fn oneway_operations_return_unit_and_report_pattern() {
        let op =
            OperationSig::oneway("pass").param("avail", ValueType::Set(Box::new(ValueType::Id)));
        assert!(op.is_oneway());
        assert_eq!(op.returns(), &ValueType::Unit);
        assert_eq!(op.required_pattern(), InteractionPattern::Oneway);
    }

    #[test]
    fn display_renders_idl_like_text() {
        let s = controller().to_string();
        assert!(s.starts_with("interface Controller {"), "{s}");
        assert!(s.contains("bool is_available(resid: id);"), "{s}");
        assert!(s.contains("oneway unit free(subid: id);"), "{s}");
    }

    #[test]
    fn all_patterns_listed_once() {
        let mut all = InteractionPattern::ALL.to_vec();
        all.dedup();
        assert_eq!(all.len(), 4);
    }
}
