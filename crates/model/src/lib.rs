//! # svckit-model — the service-concept metamodel
//!
//! This crate implements the *service concept* as defined in Almeida, van
//! Sinderen, Ferreira Pires and Quartel, *"The role of the service concept in
//! model-driven applications development"* (MIDDLEWARE 2003), Sections 2, 4.2
//! and 5:
//!
//! * A **service** is defined "in terms of the service primitives that occur
//!   at service access points, and the relationships between service
//!   primitives". [`ServiceDefinition`] captures exactly that: a set of
//!   [`PrimitiveSpec`]s available at role-typed [`Sap`]s, related by
//!   [`Constraint`]s.
//! * Constraints come in two flavours named by the paper: **local**
//!   constraints relate primitives occurring at the *same* access point
//!   (e.g. "the execution of `granted` eventually follows the execution of
//!   `request`"), while **remote** constraints relate primitives across
//!   access points (e.g. "a resource is only granted to one subscriber at a
//!   time").
//! * Whether a concrete execution — a [`Trace`] of
//!   [`PrimitiveEvent`]s — is a *correct implementation* of a service is
//!   decided by the [`conformance`] checker ("this can be assessed
//!   formally").
//!
//! The crate also hosts the *middleware-centred* modelling vocabulary of
//! Section 3 ([`InterfaceDef`], [`OperationSig`], [`InteractionPattern`]),
//! so that both paradigms share one type universe and can be compared.
//!
//! # Example
//!
//! Define the paper's floor-control service (Figure 5) and check a trace:
//!
//! ```
//! use svckit_model::{
//!     Constraint, ConstraintScope, PrimitiveSpec, Direction, ServiceDefinition,
//!     Trace, PrimitiveEvent, Sap, PartId, Value, Instant, conformance,
//! };
//!
//! let service = ServiceDefinition::builder("floor-control")
//!     .role("subscriber", 2, usize::MAX)
//!     .primitive(PrimitiveSpec::new("request", Direction::FromUser).param_id("resid"))
//!     .primitive(PrimitiveSpec::new("granted", Direction::ToUser).param_id("resid"))
//!     .primitive(PrimitiveSpec::new("free", Direction::FromUser).param_id("resid"))
//!     .constraint(Constraint::eventually_follows("request", "granted", ConstraintScope::SameSap).keyed(&[0]))
//!     .constraint(Constraint::precedes("granted", "free", ConstraintScope::SameSap).keyed(&[0]))
//!     .constraint(Constraint::mutual_exclusion("granted", "free").keyed(&[0]))
//!     .build()
//!     .expect("well-formed service");
//!
//! let sap = Sap::new("subscriber", PartId::new(1));
//! let mut trace = Trace::new();
//! trace.push(PrimitiveEvent::new(Instant::from_micros(1), sap.clone(), "request", vec![Value::Id(7)]));
//! trace.push(PrimitiveEvent::new(Instant::from_micros(2), sap.clone(), "granted", vec![Value::Id(7)]));
//! trace.push(PrimitiveEvent::new(Instant::from_micros(3), sap, "free", vec![Value::Id(7)]));
//!
//! let report = conformance::check_trace(&service, &trace, &conformance::CheckOptions::default());
//! assert!(report.is_conformant());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod conformance;
mod constraint;
mod error;
mod id;
mod interface;
mod primitive;
mod sap;
mod service;
mod time;
mod trace;
mod value;

pub use constraint::{Constraint, ConstraintKind, ConstraintScope};
pub use error::ModelError;
pub use id::{PartId, ResourceId, SubscriberId};
pub use interface::{InteractionPattern, InterfaceDef, OperationSig};
pub use primitive::{Direction, ParamSpec, PrimitiveSpec, ValueType};
pub use sap::{RoleSpec, Sap};
pub use service::{ServiceDefinition, ServiceDefinitionBuilder};
pub use time::{Duration, Instant};
pub use trace::{PrimitiveEvent, Trace};
pub use value::Value;
