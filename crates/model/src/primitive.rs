//! Service primitives.
//!
//! "A systematic design method based on the protocol-centred paradigm consists
//! of defining (i) the service to be supported in terms of the service
//! primitives that occur at service access points …" (Section 2). A
//! [`PrimitiveSpec`] is the *schema* of such a primitive: its name, the
//! direction in which it crosses the service boundary, and its typed
//! parameters.

use std::fmt;

use crate::error::ModelError;
use crate::value::Value;

/// The direction in which a primitive crosses the service boundary.
///
/// In classical service terminology, a `FromUser` primitive is a *request*
/// issued by the service user to the provider, and a `ToUser` primitive is an
/// *indication* delivered by the provider to the user. The floor-control
/// service's `request` and `free` are `FromUser`; `granted` is `ToUser`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Issued by the service user to the service provider (request).
    FromUser,
    /// Delivered by the service provider to the service user (indication).
    ToUser,
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Direction::FromUser => write!(f, "from-user"),
            Direction::ToUser => write!(f, "to-user"),
        }
    }
}

/// The type of a primitive or operation parameter.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ValueType {
    /// Any value (used for generic containers such as middleware argument
    /// lists, which are heterogeneous).
    Any,
    /// No payload.
    Unit,
    /// Boolean.
    Bool,
    /// Signed integer.
    Int,
    /// Text string.
    Text,
    /// Opaque identifier.
    Id,
    /// Set of values of the element type.
    Set(Box<ValueType>),
    /// Sequence of values of the element type.
    List(Box<ValueType>),
}

impl ValueType {
    /// Checks whether `value` inhabits this type.
    pub fn admits(&self, value: &Value) -> bool {
        match (self, value) {
            (ValueType::Any, _) => true,
            (ValueType::Unit, Value::Unit) => true,
            (ValueType::Bool, Value::Bool(_)) => true,
            (ValueType::Int, Value::Int(_)) => true,
            (ValueType::Text, Value::Text(_)) => true,
            (ValueType::Id, Value::Id(_)) => true,
            (ValueType::Set(elem), Value::Set(items)) => items.iter().all(|v| elem.admits(v)),
            (ValueType::List(elem), Value::List(items)) => items.iter().all(|v| elem.admits(v)),
            _ => false,
        }
    }
}

impl fmt::Display for ValueType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValueType::Any => write!(f, "any"),
            ValueType::Unit => write!(f, "unit"),
            ValueType::Bool => write!(f, "bool"),
            ValueType::Int => write!(f, "int"),
            ValueType::Text => write!(f, "text"),
            ValueType::Id => write!(f, "id"),
            ValueType::Set(e) => write!(f, "set<{e}>"),
            ValueType::List(e) => write!(f, "list<{e}>"),
        }
    }
}

/// A named, typed parameter of a service primitive or operation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ParamSpec {
    name: String,
    ty: ValueType,
}

impl ParamSpec {
    /// Creates a parameter specification.
    pub fn new(name: impl Into<String>, ty: ValueType) -> Self {
        ParamSpec {
            name: name.into(),
            ty,
        }
    }

    /// The parameter name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The parameter type.
    pub fn ty(&self) -> &ValueType {
        &self.ty
    }
}

impl fmt::Display for ParamSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.name, self.ty)
    }
}

/// Schema of a service primitive.
///
/// # Example
///
/// ```
/// use svckit_model::{PrimitiveSpec, Direction, ValueType, Value};
///
/// let spec = PrimitiveSpec::new("request", Direction::FromUser).param_id("resid");
/// assert_eq!(spec.name(), "request");
/// assert!(spec.validate_args(&[Value::Id(1)]).is_ok());
/// assert!(spec.validate_args(&[Value::Bool(true)]).is_err());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrimitiveSpec {
    name: String,
    direction: Direction,
    params: Vec<ParamSpec>,
}

impl PrimitiveSpec {
    /// Creates a primitive schema with no parameters.
    pub fn new(name: impl Into<String>, direction: Direction) -> Self {
        PrimitiveSpec {
            name: name.into(),
            direction,
            params: Vec::new(),
        }
    }

    /// Adds a parameter (builder-style).
    #[must_use]
    pub fn param(mut self, name: impl Into<String>, ty: ValueType) -> Self {
        self.params.push(ParamSpec::new(name, ty));
        self
    }

    /// Adds an identifier-typed parameter; the most common shape in the
    /// running example.
    #[must_use]
    pub fn param_id(self, name: impl Into<String>) -> Self {
        self.param(name, ValueType::Id)
    }

    /// The primitive name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The boundary-crossing direction.
    pub fn direction(&self) -> Direction {
        self.direction
    }

    /// The parameter schemas, in positional order.
    pub fn params(&self) -> &[ParamSpec] {
        &self.params
    }

    /// Number of parameters.
    pub fn arity(&self) -> usize {
        self.params.len()
    }

    /// Validates an argument vector against the schema.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::ArityMismatch`] when the count differs and
    /// [`ModelError::TypeMismatch`] when a value does not inhabit the declared
    /// parameter type.
    pub fn validate_args(&self, args: &[Value]) -> Result<(), ModelError> {
        if args.len() != self.params.len() {
            return Err(ModelError::ArityMismatch {
                primitive: self.name.clone(),
                expected: self.params.len(),
                actual: args.len(),
            });
        }
        for (param, value) in self.params.iter().zip(args) {
            if !param.ty.admits(value) {
                return Err(ModelError::TypeMismatch {
                    primitive: self.name.clone(),
                    param: param.name.clone(),
                    expected: param.ty.to_string(),
                    actual: value.type_name().to_owned(),
                });
            }
        }
        Ok(())
    }
}

impl fmt::Display for PrimitiveSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}(", self.direction, self.name)?;
        for (i, p) in self.params.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn any_admits_everything() {
        for v in [
            Value::Unit,
            Value::Bool(true),
            Value::Id(1),
            Value::id_set([1]),
            Value::List(vec![Value::Bool(true), Value::Id(1)]),
        ] {
            assert!(ValueType::Any.admits(&v));
        }
        assert!(
            ValueType::List(Box::new(ValueType::Any))
                .admits(&Value::List(vec![Value::Bool(true), Value::Id(1)])),
            "heterogeneous list under list<any>"
        );
        assert_eq!(ValueType::Any.to_string(), "any");
    }

    #[test]
    fn value_type_admits_matching_values() {
        assert!(ValueType::Id.admits(&Value::Id(1)));
        assert!(!ValueType::Id.admits(&Value::Int(1)));
        assert!(ValueType::Set(Box::new(ValueType::Id)).admits(&Value::id_set([1, 2])));
        let mixed: BTreeSet<Value> = [Value::Id(1), Value::Bool(true)].into_iter().collect();
        assert!(!ValueType::Set(Box::new(ValueType::Id)).admits(&Value::Set(mixed)));
        assert!(ValueType::List(Box::new(ValueType::Int))
            .admits(&Value::List(vec![Value::Int(1), Value::Int(2)])));
    }

    #[test]
    fn validate_args_checks_arity() {
        let spec = PrimitiveSpec::new("request", Direction::FromUser).param_id("resid");
        let err = spec.validate_args(&[]).unwrap_err();
        assert!(matches!(
            err,
            ModelError::ArityMismatch {
                expected: 1,
                actual: 0,
                ..
            }
        ));
    }

    #[test]
    fn validate_args_checks_types() {
        let spec = PrimitiveSpec::new("request", Direction::FromUser).param_id("resid");
        let err = spec.validate_args(&[Value::Text("x".into())]).unwrap_err();
        assert!(matches!(err, ModelError::TypeMismatch { .. }));
        assert!(spec.validate_args(&[Value::Id(3)]).is_ok());
    }

    #[test]
    fn display_renders_signature() {
        let spec = PrimitiveSpec::new("pass", Direction::FromUser)
            .param("available", ValueType::Set(Box::new(ValueType::Id)));
        assert_eq!(spec.to_string(), "from-user pass(available: set<id>)");
    }

    #[test]
    fn empty_set_admits_any_element_type() {
        let ty = ValueType::Set(Box::new(ValueType::Id));
        assert!(ty.admits(&Value::Set(BTreeSet::new())));
    }
}
