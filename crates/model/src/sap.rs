//! Service access points and roles.
//!
//! A service is observed only at its *service access points* (SAPs). In the
//! paper's floor-control service, "the identification of the subscriber is
//! implied by the identification of the access point where the service
//! primitive is executed" — i.e. a SAP binds a *role* (subscriber) to a
//! concrete application part.

use std::fmt;

use crate::id::PartId;

/// A concrete service access point: a role instantiated at an application
/// part.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Sap {
    role: String,
    part: PartId,
}

impl Sap {
    /// Creates an access point for `role` attached to application part
    /// `part`.
    pub fn new(role: impl Into<String>, part: PartId) -> Self {
        Sap {
            role: role.into(),
            part,
        }
    }

    /// The role this access point instantiates (e.g. `"subscriber"`).
    pub fn role(&self) -> &str {
        &self.role
    }

    /// The application part attached at this access point.
    pub fn part(&self) -> PartId {
        self.part
    }
}

impl fmt::Display for Sap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.role, self.part)
    }
}

/// A role in a service definition, with its allowed multiplicity.
///
/// The floor-control service has a single role, `subscriber`, with
/// multiplicity `2..`. An asymmetric service (e.g. client/server) would
/// declare two roles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoleSpec {
    name: String,
    min: usize,
    max: usize,
}

impl RoleSpec {
    /// Creates a role with an inclusive multiplicity range.
    ///
    /// Use `usize::MAX` for an unbounded maximum.
    pub fn new(name: impl Into<String>, min: usize, max: usize) -> Self {
        RoleSpec {
            name: name.into(),
            min,
            max,
        }
    }

    /// The role name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Minimum number of access points instantiating this role.
    pub fn min(&self) -> usize {
        self.min
    }

    /// Maximum number of access points instantiating this role.
    pub fn max(&self) -> usize {
        self.max
    }

    /// Whether `count` access points satisfy the multiplicity.
    pub fn admits_count(&self, count: usize) -> bool {
        count >= self.min && count <= self.max
    }
}

impl fmt::Display for RoleSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.max == usize::MAX {
            write!(f, "{}[{}..]", self.name, self.min)
        } else {
            write!(f, "{}[{}..{}]", self.name, self.min, self.max)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sap_identity_is_role_plus_part() {
        let a = Sap::new("subscriber", PartId::new(1));
        let b = Sap::new("subscriber", PartId::new(1));
        let c = Sap::new("subscriber", PartId::new(2));
        let d = Sap::new("controller", PartId::new(1));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
        assert_eq!(a.to_string(), "subscriber@part-1");
    }

    #[test]
    fn role_multiplicity_bounds_are_inclusive() {
        let role = RoleSpec::new("subscriber", 2, 4);
        assert!(!role.admits_count(1));
        assert!(role.admits_count(2));
        assert!(role.admits_count(4));
        assert!(!role.admits_count(5));
    }

    #[test]
    fn unbounded_role_displays_open_range() {
        let role = RoleSpec::new("subscriber", 2, usize::MAX);
        assert_eq!(role.to_string(), "subscriber[2..]");
        assert!(role.admits_count(1_000_000));
        let bounded = RoleSpec::new("controller", 1, 1);
        assert_eq!(bounded.to_string(), "controller[1..1]");
    }
}
