//! Service definitions.
//!
//! "The service definition sets the boundaries of the application interaction
//! system to be designed. Services are specified at a level of abstraction in
//! which the supporting infrastructure is not considered." (Section 6). A
//! [`ServiceDefinition`] is therefore the paper's first *milestone*: it is
//! middleware-platform-independent and even "paradigm-independent" — the same
//! definition is implemented by all six floor-control solutions in
//! `svckit-floorctl`.

use std::collections::BTreeMap;

use crate::constraint::Constraint;
use crate::error::ModelError;
use crate::primitive::PrimitiveSpec;
use crate::sap::RoleSpec;

/// A complete service definition: roles, primitives and constraints.
///
/// Build one with [`ServiceDefinition::builder`]; construction validates
/// well-formedness (unique names, constraints referencing declared
/// primitives, key indices within arity).
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceDefinition {
    name: String,
    roles: Vec<RoleSpec>,
    primitives: Vec<PrimitiveSpec>,
    constraints: Vec<Constraint>,
}

impl ServiceDefinition {
    /// Starts building a service definition with the given name.
    pub fn builder(name: impl Into<String>) -> ServiceDefinitionBuilder {
        ServiceDefinitionBuilder {
            name: name.into(),
            roles: Vec::new(),
            primitives: Vec::new(),
            constraints: Vec::new(),
        }
    }

    /// The service name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The declared roles.
    pub fn roles(&self) -> &[RoleSpec] {
        &self.roles
    }

    /// The declared primitives.
    pub fn primitives(&self) -> &[PrimitiveSpec] {
        &self.primitives
    }

    /// The behavioural constraints.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Looks up a primitive schema by name.
    pub fn primitive(&self, name: &str) -> Option<&PrimitiveSpec> {
        self.primitives.iter().find(|p| p.name() == name)
    }

    /// Looks up a role by name.
    pub fn role(&self, name: &str) -> Option<&RoleSpec> {
        self.roles.iter().find(|r| r.name() == name)
    }
}

impl std::fmt::Display for ServiceDefinition {
    /// Renders the definition in the spec-like notation of Figure 5:
    /// roles, primitive signatures, then constraints.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "service {} {{", self.name)?;
        for role in &self.roles {
            writeln!(f, "  role {role};")?;
        }
        for primitive in &self.primitives {
            writeln!(f, "  {primitive};")?;
        }
        for constraint in &self.constraints {
            writeln!(f, "  constraint {constraint};")?;
        }
        write!(f, "}}")
    }
}

/// Builder for [`ServiceDefinition`].
#[derive(Debug, Clone)]
pub struct ServiceDefinitionBuilder {
    name: String,
    roles: Vec<RoleSpec>,
    primitives: Vec<PrimitiveSpec>,
    constraints: Vec<Constraint>,
}

impl ServiceDefinitionBuilder {
    /// Declares a role with an inclusive multiplicity range
    /// (`usize::MAX` for unbounded).
    #[must_use]
    pub fn role(mut self, name: impl Into<String>, min: usize, max: usize) -> Self {
        self.roles.push(RoleSpec::new(name, min, max));
        self
    }

    /// Declares a service primitive.
    #[must_use]
    pub fn primitive(mut self, spec: PrimitiveSpec) -> Self {
        self.primitives.push(spec);
        self
    }

    /// Adds a behavioural constraint.
    #[must_use]
    pub fn constraint(mut self, constraint: Constraint) -> Self {
        self.constraints.push(constraint);
        self
    }

    /// Validates and builds the definition.
    ///
    /// # Errors
    ///
    /// * [`ModelError::NoRoles`] if no role was declared;
    /// * [`ModelError::DuplicateRole`] / [`ModelError::DuplicatePrimitive`]
    ///   on name collisions;
    /// * [`ModelError::UnknownPrimitive`] if a constraint references an
    ///   undeclared primitive;
    /// * [`ModelError::KeyIndexOutOfRange`] if a correlation-key position
    ///   exceeds a referenced primitive's arity.
    pub fn build(self) -> Result<ServiceDefinition, ModelError> {
        if self.roles.is_empty() {
            return Err(ModelError::NoRoles);
        }
        let mut seen_roles = BTreeMap::new();
        for role in &self.roles {
            if seen_roles.insert(role.name().to_owned(), ()).is_some() {
                return Err(ModelError::DuplicateRole {
                    name: role.name().to_owned(),
                });
            }
        }
        let mut arity = BTreeMap::new();
        for prim in &self.primitives {
            if arity.insert(prim.name().to_owned(), prim.arity()).is_some() {
                return Err(ModelError::DuplicatePrimitive {
                    name: prim.name().to_owned(),
                });
            }
        }
        for constraint in &self.constraints {
            for name in constraint.kind().referenced_primitives() {
                match arity.get(name) {
                    None => {
                        return Err(ModelError::UnknownPrimitive {
                            name: name.to_owned(),
                            context: constraint.to_string(),
                        })
                    }
                    Some(&a) => {
                        for &index in constraint.key() {
                            if index >= a {
                                return Err(ModelError::KeyIndexOutOfRange {
                                    primitive: name.to_owned(),
                                    index,
                                    arity: a,
                                });
                            }
                        }
                    }
                }
            }
        }
        Ok(ServiceDefinition {
            name: self.name,
            roles: self.roles,
            primitives: self.primitives,
            constraints: self.constraints,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::ConstraintScope;
    use crate::primitive::Direction;

    fn base() -> ServiceDefinitionBuilder {
        ServiceDefinition::builder("svc")
            .role("user", 1, usize::MAX)
            .primitive(PrimitiveSpec::new("request", Direction::FromUser).param_id("resid"))
            .primitive(PrimitiveSpec::new("granted", Direction::ToUser).param_id("resid"))
    }

    #[test]
    fn builds_well_formed_definition() {
        let svc = base()
            .constraint(
                Constraint::eventually_follows("request", "granted", ConstraintScope::SameSap)
                    .keyed(&[0]),
            )
            .build()
            .unwrap();
        assert_eq!(svc.name(), "svc");
        assert_eq!(svc.primitives().len(), 2);
        assert!(svc.primitive("request").is_some());
        assert!(svc.primitive("nope").is_none());
        assert!(svc.role("user").is_some());
    }

    #[test]
    fn display_renders_spec_notation() {
        let svc = base()
            .constraint(
                Constraint::eventually_follows("request", "granted", ConstraintScope::SameSap)
                    .keyed(&[0]),
            )
            .build()
            .unwrap();
        let text = svc.to_string();
        assert!(text.starts_with("service svc {"), "{text}");
        assert!(text.contains("role user[1..];"), "{text}");
        assert!(text.contains("from-user request(resid: id);"), "{text}");
        assert!(text.contains("constraint local:"), "{text}");
        assert!(text.ends_with('}'), "{text}");
    }

    #[test]
    fn rejects_no_roles() {
        let err = ServiceDefinition::builder("svc").build().unwrap_err();
        assert_eq!(err, ModelError::NoRoles);
    }

    #[test]
    fn rejects_duplicate_primitive() {
        let err = base()
            .primitive(PrimitiveSpec::new("request", Direction::FromUser))
            .build()
            .unwrap_err();
        assert!(matches!(err, ModelError::DuplicatePrimitive { name } if name == "request"));
    }

    #[test]
    fn rejects_duplicate_role() {
        let err = base().role("user", 1, 2).build().unwrap_err();
        assert!(matches!(err, ModelError::DuplicateRole { name } if name == "user"));
    }

    #[test]
    fn rejects_constraint_on_unknown_primitive() {
        let err = base()
            .constraint(Constraint::precedes(
                "granted",
                "free",
                ConstraintScope::SameSap,
            ))
            .build()
            .unwrap_err();
        assert!(matches!(err, ModelError::UnknownPrimitive { name, .. } if name == "free"));
    }

    #[test]
    fn rejects_key_index_beyond_arity() {
        let err = base()
            .constraint(
                Constraint::precedes("request", "granted", ConstraintScope::SameSap).keyed(&[1]),
            )
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            ModelError::KeyIndexOutOfRange {
                index: 1,
                arity: 1,
                ..
            }
        ));
    }
}
