//! Logical time.
//!
//! All executions in the kit run on a simulated clock (see `svckit-netsim`),
//! so time is a logical quantity measured in microseconds. Keeping the type
//! here, in the base crate, lets traces, simulators and metrics share it
//! without dependency cycles.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in microseconds since the start of the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Instant(u64);

/// A span of simulated time, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(u64);

impl Instant {
    /// The origin of simulated time.
    pub const ZERO: Instant = Instant(0);

    /// Creates an instant from microseconds since the origin.
    pub const fn from_micros(micros: u64) -> Self {
        Instant(micros)
    }

    /// Microseconds since the origin.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// The span from `earlier` to `self`.
    ///
    /// Returns [`Duration::ZERO`] when `earlier` is later than `self`
    /// (saturating), so metric code never panics on reordered events.
    pub fn saturating_since(self, earlier: Instant) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }
}

impl Duration {
    /// The empty span.
    pub const ZERO: Duration = Duration(0);

    /// Creates a duration from microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        Duration(micros)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        Duration(millis * 1_000)
    }

    /// Creates a duration from seconds.
    pub const fn from_secs(secs: u64) -> Self {
        Duration(secs * 1_000_000)
    }

    /// Length in microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Length in (truncated) milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Length in fractional milliseconds, for reporting.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Saturating multiplication by an integer factor.
    pub fn saturating_mul(self, factor: u64) -> Duration {
        Duration(self.0.saturating_mul(factor))
    }
}

impl Add<Duration> for Instant {
    type Output = Instant;

    fn add(self, rhs: Duration) -> Instant {
        Instant(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<Duration> for Instant {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Add for Duration {
    type Output = Duration;

    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for Duration {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for Instant {
    type Output = Duration;

    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`; use
    /// [`Instant::saturating_since`] when ordering is not guaranteed.
    fn sub(self, rhs: Instant) -> Duration {
        debug_assert!(rhs.0 <= self.0, "instant subtraction went negative");
        Duration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for Instant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}us", self.0)
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 && self.0.is_multiple_of(1_000_000) {
            write!(f, "{}s", self.0 / 1_000_000)
        } else if self.0 >= 1_000 && self.0.is_multiple_of(1_000) {
            write!(f, "{}ms", self.0 / 1_000)
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_roundtrips() {
        let t = Instant::from_micros(10) + Duration::from_micros(5);
        assert_eq!(t.as_micros(), 15);
        assert_eq!((t - Instant::from_micros(10)).as_micros(), 5);
    }

    #[test]
    fn saturating_since_never_underflows() {
        let early = Instant::from_micros(3);
        let late = Instant::from_micros(9);
        assert_eq!(early.saturating_since(late), Duration::ZERO);
        assert_eq!(late.saturating_since(early), Duration::from_micros(6));
    }

    #[test]
    fn conversions_between_units() {
        assert_eq!(Duration::from_millis(2).as_micros(), 2_000);
        assert_eq!(Duration::from_secs(1).as_millis(), 1_000);
        assert!((Duration::from_micros(1500).as_millis_f64() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn display_picks_readable_unit() {
        assert_eq!(Duration::from_micros(7).to_string(), "7us");
        assert_eq!(Duration::from_millis(3).to_string(), "3ms");
        assert_eq!(Duration::from_secs(2).to_string(), "2s");
        assert_eq!(Instant::from_micros(4).to_string(), "t=4us");
    }

    #[test]
    fn add_assign_accumulates() {
        let mut t = Instant::ZERO;
        t += Duration::from_micros(4);
        t += Duration::from_micros(6);
        assert_eq!(t, Instant::from_micros(10));
        let mut d = Duration::ZERO;
        d += Duration::from_millis(1);
        assert_eq!(d.as_micros(), 1_000);
    }
}
