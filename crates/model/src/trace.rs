//! Execution traces.
//!
//! A [`Trace`] is the observable behaviour of a service provider: the
//! time-ordered sequence of service-primitive occurrences at its access
//! points. Traces are what the conformance checker compares against a
//! [`crate::ServiceDefinition`], and what every execution harness in the kit
//! (protocol stacks and middleware deployments alike) records — this shared
//! observation format is what makes the paper's paradigm comparison
//! (Section 4) possible.

use std::fmt;

use crate::sap::Sap;
use crate::time::Instant;
use crate::value::Value;

/// One occurrence of a service primitive at an access point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrimitiveEvent {
    time: Instant,
    sap: Sap,
    primitive: String,
    args: Vec<Value>,
}

impl PrimitiveEvent {
    /// Records that `primitive` occurred with `args` at `sap` at time `time`.
    pub fn new(time: Instant, sap: Sap, primitive: impl Into<String>, args: Vec<Value>) -> Self {
        PrimitiveEvent {
            time,
            sap,
            primitive: primitive.into(),
            args,
        }
    }

    /// The simulated time of the occurrence.
    pub fn time(&self) -> Instant {
        self.time
    }

    /// The access point at which the primitive occurred.
    pub fn sap(&self) -> &Sap {
        &self.sap
    }

    /// The primitive name.
    pub fn primitive(&self) -> &str {
        &self.primitive
    }

    /// The argument values, positionally.
    pub fn args(&self) -> &[Value] {
        &self.args
    }

    /// Extracts the correlation key formed by the argument positions in
    /// `indices`. Missing positions yield [`Value::Unit`] so that malformed
    /// events still produce a stable key and get reported by schema
    /// validation instead of panicking here.
    pub fn key(&self, indices: &[usize]) -> Vec<Value> {
        indices
            .iter()
            .map(|&i| self.args.get(i).cloned().unwrap_or(Value::Unit))
            .collect()
    }
}

impl fmt::Display for PrimitiveEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}(", self.time, self.sap, self.primitive)?;
        for (i, a) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ")")
    }
}

/// A time-ordered sequence of primitive occurrences.
///
/// `push` maintains ordering by insertion; use [`Trace::sort_by_time`] after
/// merging traces recorded at different access points.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    events: Vec<PrimitiveEvent>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Appends an event.
    pub fn push(&mut self, event: PrimitiveEvent) {
        self.events.push(event);
    }

    /// The recorded events in order.
    pub fn events(&self) -> &[PrimitiveEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Iterates over the events.
    pub fn iter(&self) -> std::slice::Iter<'_, PrimitiveEvent> {
        self.events.iter()
    }

    /// Stable-sorts events by time, preserving the recording order of
    /// simultaneous events.
    pub fn sort_by_time(&mut self) {
        self.events.sort_by_key(PrimitiveEvent::time);
    }

    /// Merges another trace into this one and re-sorts by time.
    pub fn merge(&mut self, other: Trace) {
        self.events.extend(other.events);
        self.sort_by_time();
    }

    /// Returns the sub-trace of events at `sap`, preserving order.
    pub fn at_sap(&self, sap: &Sap) -> Trace {
        Trace {
            events: self
                .events
                .iter()
                .filter(|e| e.sap() == sap)
                .cloned()
                .collect(),
        }
    }

    /// Returns the sequence of primitive names, useful as an abstract trace
    /// for comparison with an LTS language.
    pub fn primitive_names(&self) -> Vec<&str> {
        self.events.iter().map(|e| e.primitive.as_str()).collect()
    }

    /// Counts occurrences of the named primitive.
    pub fn count_of(&self, primitive: &str) -> usize {
        self.events
            .iter()
            .filter(|e| e.primitive == primitive)
            .count()
    }
}

impl FromIterator<PrimitiveEvent> for Trace {
    fn from_iter<I: IntoIterator<Item = PrimitiveEvent>>(iter: I) -> Self {
        Trace {
            events: iter.into_iter().collect(),
        }
    }
}

impl Extend<PrimitiveEvent> for Trace {
    fn extend<I: IntoIterator<Item = PrimitiveEvent>>(&mut self, iter: I) {
        self.events.extend(iter);
    }
}

impl IntoIterator for Trace {
    type Item = PrimitiveEvent;
    type IntoIter = std::vec::IntoIter<PrimitiveEvent>;

    fn into_iter(self) -> Self::IntoIter {
        self.events.into_iter()
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a PrimitiveEvent;
    type IntoIter = std::slice::Iter<'a, PrimitiveEvent>;

    fn into_iter(self) -> Self::IntoIter {
        self.events.iter()
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for event in &self.events {
            writeln!(f, "{event}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::PartId;

    fn ev(t: u64, part: u64, prim: &str, res: u64) -> PrimitiveEvent {
        PrimitiveEvent::new(
            Instant::from_micros(t),
            Sap::new("subscriber", PartId::new(part)),
            prim,
            vec![Value::Id(res)],
        )
    }

    #[test]
    fn merge_orders_by_time() {
        let mut a: Trace = [ev(3, 1, "free", 1), ev(1, 1, "request", 1)]
            .into_iter()
            .collect();
        a.sort_by_time();
        let b: Trace = [ev(2, 2, "request", 1)].into_iter().collect();
        a.merge(b);
        assert_eq!(a.primitive_names(), vec!["request", "request", "free"]);
    }

    #[test]
    fn at_sap_filters() {
        let t: Trace = [ev(1, 1, "request", 1), ev(2, 2, "request", 2)]
            .into_iter()
            .collect();
        let s1 = t.at_sap(&Sap::new("subscriber", PartId::new(1)));
        assert_eq!(s1.len(), 1);
        assert_eq!(s1.events()[0].args()[0], Value::Id(1));
    }

    #[test]
    fn key_extraction_is_total() {
        let e = ev(1, 1, "request", 9);
        assert_eq!(e.key(&[0]), vec![Value::Id(9)]);
        assert_eq!(e.key(&[0, 5]), vec![Value::Id(9), Value::Unit]);
        assert_eq!(e.key(&[]), Vec::<Value>::new());
    }

    #[test]
    fn count_of_counts_by_name() {
        let t: Trace = [
            ev(1, 1, "request", 1),
            ev(2, 1, "granted", 1),
            ev(3, 1, "request", 2),
        ]
        .into_iter()
        .collect();
        assert_eq!(t.count_of("request"), 2);
        assert_eq!(t.count_of("granted"), 1);
        assert_eq!(t.count_of("nope"), 0);
    }

    #[test]
    fn stable_sort_preserves_simultaneous_order() {
        let mut t: Trace = [ev(5, 1, "a", 1), ev(5, 1, "b", 1), ev(1, 1, "c", 1)]
            .into_iter()
            .collect();
        t.sort_by_time();
        assert_eq!(t.primitive_names(), vec!["c", "a", "b"]);
    }

    #[test]
    fn display_one_event_per_line() {
        let t: Trace = [ev(1, 1, "request", 1)].into_iter().collect();
        let s = t.to_string();
        assert!(s.contains("request(#1)"));
        assert!(s.ends_with('\n'));
    }
}
