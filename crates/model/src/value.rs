//! Application-level information values.
//!
//! The paper observes that middleware infrastructures "provide facilities to
//! define application-level information attributes and to exchange values of
//! these attributes" (Section 4.1). [`Value`] is the common data universe used
//! by service primitives, PDUs and middleware operations, so that the two
//! paradigms exchange the *same* information and traces can be compared.

use std::collections::BTreeSet;
use std::fmt;

use crate::error::ModelError;

/// A dynamically-typed application-level value.
///
/// The variants cover exactly what the running example and the platform
/// models need: identifiers (`ResourceId`/`SubscriberId` travel as
/// [`Value::Id`]), booleans (the polling solution's `is_available` result),
/// sets (the token solution's `pass(set<ResourceId>)`), plus the basics.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Value {
    /// The unit value (an operation with no result).
    #[default]
    Unit,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// A text string.
    Text(String),
    /// An opaque identifier (resource ids, subscriber ids, part ids).
    Id(u64),
    /// An ordered set of values.
    Set(BTreeSet<Value>),
    /// A sequence of values.
    List(Vec<Value>),
}

impl Value {
    /// Returns the boolean payload, if this value is a [`Value::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the integer payload, if this value is a [`Value::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the identifier payload, if this value is a [`Value::Id`].
    pub fn as_id(&self) -> Option<u64> {
        match self {
            Value::Id(id) => Some(*id),
            _ => None,
        }
    }

    /// Returns the text payload, if this value is a [`Value::Text`].
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(t) => Some(t),
            _ => None,
        }
    }

    /// Returns the set payload, if this value is a [`Value::Set`].
    pub fn as_set(&self) -> Option<&BTreeSet<Value>> {
        match self {
            Value::Set(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the list payload, if this value is a [`Value::List`].
    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::List(l) => Some(l),
            _ => None,
        }
    }

    /// Like [`Value::as_bool`], but a typed error instead of `None` —
    /// for call sites that would otherwise `unwrap()` on malformed input.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::ValueKindMismatch`] for any other variant.
    pub fn try_bool(&self) -> Result<bool, ModelError> {
        self.as_bool().ok_or(ModelError::ValueKindMismatch {
            expected: "bool",
            actual: self.type_name(),
        })
    }

    /// Like [`Value::as_int`], but a typed error instead of `None`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::ValueKindMismatch`] for any other variant.
    pub fn try_int(&self) -> Result<i64, ModelError> {
        self.as_int().ok_or(ModelError::ValueKindMismatch {
            expected: "int",
            actual: self.type_name(),
        })
    }

    /// Like [`Value::as_id`], but a typed error instead of `None`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::ValueKindMismatch`] for any other variant.
    pub fn try_id(&self) -> Result<u64, ModelError> {
        self.as_id().ok_or(ModelError::ValueKindMismatch {
            expected: "id",
            actual: self.type_name(),
        })
    }

    /// Like [`Value::as_text`], but a typed error instead of `None`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::ValueKindMismatch`] for any other variant.
    pub fn try_text(&self) -> Result<&str, ModelError> {
        self.as_text().ok_or(ModelError::ValueKindMismatch {
            expected: "text",
            actual: self.type_name(),
        })
    }

    /// Like [`Value::as_set`], but a typed error instead of `None`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::ValueKindMismatch`] for any other variant.
    pub fn try_set(&self) -> Result<&BTreeSet<Value>, ModelError> {
        self.as_set().ok_or(ModelError::ValueKindMismatch {
            expected: "set",
            actual: self.type_name(),
        })
    }

    /// Like [`Value::as_list`], but a typed error instead of `None`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::ValueKindMismatch`] for any other variant.
    pub fn try_list(&self) -> Result<&[Value], ModelError> {
        self.as_list().ok_or(ModelError::ValueKindMismatch {
            expected: "list",
            actual: self.type_name(),
        })
    }

    /// Builds a [`Value::Set`] of identifiers, the shape carried by the
    /// token-based solution's `pass` operation.
    pub fn id_set<I: IntoIterator<Item = u64>>(ids: I) -> Value {
        Value::Set(ids.into_iter().map(Value::Id).collect())
    }

    /// Name of the variant, used in error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Unit => "unit",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Text(_) => "text",
            Value::Id(_) => "id",
            Value::Set(_) => "set",
            Value::List(_) => "list",
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Unit => write!(f, "()"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Text(t) => write!(f, "{t:?}"),
            Value::Id(id) => write!(f, "#{id}"),
            Value::Set(s) => {
                write!(f, "{{")?;
                for (i, v) in s.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "}}")
            }
            Value::List(l) => {
                write!(f, "[")?;
                for (i, v) in l.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Text(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Text(s)
    }
}

impl From<crate::ResourceId> for Value {
    fn from(id: crate::ResourceId) -> Self {
        Value::Id(id.raw())
    }
}

impl From<crate::SubscriberId> for Value {
    fn from(id: crate::SubscriberId) -> Self {
        Value::Id(id.raw())
    }
}

impl From<crate::PartId> for Value {
    fn from(id: crate::PartId) -> Self {
        Value::Id(id.raw())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_return_payloads() {
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Int(-3).as_int(), Some(-3));
        assert_eq!(Value::Id(9).as_id(), Some(9));
        assert_eq!(Value::from("hi").as_text(), Some("hi"));
        assert!(Value::Unit.as_bool().is_none());
        assert!(Value::Bool(true).as_id().is_none());
    }

    #[test]
    fn typed_accessors_carry_both_variant_names() {
        assert_eq!(Value::Id(9).try_id(), Ok(9));
        assert_eq!(Value::Bool(true).try_bool(), Ok(true));
        assert_eq!(Value::Int(-2).try_int(), Ok(-2));
        assert_eq!(Value::from("hi").try_text(), Ok("hi"));
        assert_eq!(
            Value::id_set([1]).try_set(),
            Ok(Value::id_set([1]).as_set().unwrap())
        );
        let err = Value::Bool(true).try_id().unwrap_err();
        assert_eq!(
            err,
            ModelError::ValueKindMismatch {
                expected: "id",
                actual: "bool",
            }
        );
        assert_eq!(
            err.to_string(),
            "value kind mismatch: expected id, got bool"
        );
        assert!(Value::Unit.try_list().is_err());
    }

    #[test]
    fn id_set_collects_sorted_unique() {
        let v = Value::id_set([3, 1, 3, 2]);
        let s = v.as_set().unwrap();
        let ids: Vec<u64> = s.iter().filter_map(Value::as_id).collect();
        assert_eq!(ids, vec![1, 2, 3]);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(Value::Unit.to_string(), "()");
        assert_eq!(Value::Id(4).to_string(), "#4");
        assert_eq!(Value::id_set([2, 1]).to_string(), "{#1, #2}");
        assert_eq!(
            Value::List(vec![Value::Int(1), Value::Bool(false)]).to_string(),
            "[1, false]"
        );
    }

    #[test]
    fn conversion_from_domain_ids() {
        let v: Value = crate::ResourceId::new(5).into();
        assert_eq!(v, Value::Id(5));
    }

    #[test]
    fn values_are_ordered_for_set_membership() {
        let mut set = BTreeSet::new();
        set.insert(Value::Id(2));
        set.insert(Value::Id(1));
        assert!(set.contains(&Value::Id(1)));
        assert_eq!(set.len(), 2);
    }
}
