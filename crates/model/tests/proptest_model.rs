//! Property-based tests of the conformance checker: totality on arbitrary
//! traces, and soundness on constructively-built conformant traces.

use proptest::prelude::*;

use svckit_model::conformance::{check_trace, CheckOptions};
use svckit_model::{
    Constraint, ConstraintScope, Direction, Instant, PartId, PrimitiveEvent, PrimitiveSpec, Sap,
    ServiceDefinition, Trace, Value,
};

fn floor_control() -> ServiceDefinition {
    ServiceDefinition::builder("floor-control")
        .role("subscriber", 2, usize::MAX)
        .primitive(PrimitiveSpec::new("request", Direction::FromUser).param_id("resid"))
        .primitive(PrimitiveSpec::new("granted", Direction::ToUser).param_id("resid"))
        .primitive(PrimitiveSpec::new("free", Direction::FromUser).param_id("resid"))
        .constraint(
            Constraint::eventually_follows("request", "granted", ConstraintScope::SameSap)
                .keyed(&[0]),
        )
        .constraint(
            Constraint::precedes("request", "granted", ConstraintScope::SameSap).keyed(&[0]),
        )
        .constraint(Constraint::precedes("granted", "free", ConstraintScope::SameSap).keyed(&[0]))
        .constraint(Constraint::mutual_exclusion("granted", "free").keyed(&[0]))
        .build()
        .unwrap()
}

fn arb_event() -> impl Strategy<Value = PrimitiveEvent> {
    (
        0u64..10_000,
        1u64..5,
        prop_oneof![
            Just("request"),
            Just("granted"),
            Just("free"),
            Just("bogus")
        ],
        1u64..4,
    )
        .prop_map(|(t, part, primitive, res)| {
            PrimitiveEvent::new(
                Instant::from_micros(t),
                Sap::new("subscriber", PartId::new(part)),
                primitive,
                vec![Value::Id(res)],
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The checker never panics, whatever the trace.
    #[test]
    fn checker_is_total(events in proptest::collection::vec(arb_event(), 0..60)) {
        let mut trace: Trace = events.into_iter().collect();
        trace.sort_by_time();
        let service = floor_control();
        let _ = check_trace(&service, &trace, &CheckOptions::default());
        let _ = check_trace(
            &service,
            &trace,
            &CheckOptions { allow_pending_liveness: true, ..CheckOptions::default() },
        );
    }

    /// Serialized round-robin usage of one resource is always conformant,
    /// for any number of subscribers and rounds.
    #[test]
    fn serialized_rounds_always_conform(subs in 2u64..6, rounds in 1u32..5) {
        let service = floor_control();
        let mut trace = Trace::new();
        let mut t = 0u64;
        for _ in 0..rounds {
            for s in 1..=subs {
                let sap = Sap::new("subscriber", PartId::new(s));
                for primitive in ["request", "granted", "free"] {
                    t += 1;
                    trace.push(PrimitiveEvent::new(
                        Instant::from_micros(t),
                        sap.clone(),
                        primitive,
                        vec![Value::Id(1)],
                    ));
                }
            }
        }
        let report = check_trace(&service, &trace, &CheckOptions::default());
        prop_assert!(report.is_conformant(), "{report}");
    }

    /// Inserting one overlapping grant into a serialized trace always
    /// breaks conformance.
    #[test]
    fn overlapping_grant_always_violates(subs in 2u64..6) {
        let service = floor_control();
        let mut trace = Trace::new();
        let sap = |k| Sap::new("subscriber", PartId::new(k));
        // sub 1 requests and is granted…
        trace.push(PrimitiveEvent::new(Instant::from_micros(1), sap(1), "request", vec![Value::Id(1)]));
        trace.push(PrimitiveEvent::new(Instant::from_micros(2), sap(1), "granted", vec![Value::Id(1)]));
        // …then some other subscriber is granted the same resource while held.
        trace.push(PrimitiveEvent::new(Instant::from_micros(3), sap(subs), "request", vec![Value::Id(1)]));
        trace.push(PrimitiveEvent::new(Instant::from_micros(4), sap(subs), "granted", vec![Value::Id(1)]));
        trace.push(PrimitiveEvent::new(Instant::from_micros(5), sap(1), "free", vec![Value::Id(1)]));
        trace.push(PrimitiveEvent::new(Instant::from_micros(6), sap(subs), "free", vec![Value::Id(1)]));
        let report = check_trace(&service, &trace, &CheckOptions::default());
        prop_assert!(!report.is_conformant());
    }

    /// Violation indices always point into the trace.
    #[test]
    fn violation_indices_are_in_bounds(events in proptest::collection::vec(arb_event(), 0..60)) {
        let mut trace: Trace = events.into_iter().collect();
        trace.sort_by_time();
        let report = check_trace(&floor_control(), &trace, &CheckOptions::default());
        for violation in report.violations() {
            if let Some(index) = violation.event_index() {
                prop_assert!(index < trace.len());
            }
        }
    }
}
