//! A fast, deterministic hasher for the simulator's hot-path maps.
//!
//! The event core does several hash-map lookups per simulated message
//! (link scalars, per-pair arrival clamps, node RNGs, timer generations),
//! all keyed by small integers. The standard library's SipHash is
//! DoS-resistant but costs tens of nanoseconds per `(u64, u64)` key —
//! more than the rest of the dispatch path combined. Keys here are node
//! and timer ids chosen by trusted test harnesses, so collision attacks
//! are not part of the threat model and the Firefox/rustc "Fx" multiply-
//! rotate hash is the right trade: 2-3 ns per key, fully deterministic.
//!
//! Hash-map *iteration* order still depends on the hasher, so none of the
//! simulator's observable output may iterate a [`FastMap`]; everything
//! reported (metrics, traces) goes through `BTreeMap`s or sorted vectors.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// The multiplier from the Fx family (also used by rustc): a single odd
/// constant with well-mixed bits.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Multiply-rotate hasher for small integer keys.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add(i as u64);
    }
}

/// A `HashMap` using [`FxHasher`]; drop-in for the simulator's internal
/// integer-keyed maps.
pub(crate) type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_keys_hash_equal_and_lookups_work() {
        let mut map: FastMap<(u64, u64), u32> = FastMap::default();
        map.insert((1, 2), 10);
        map.insert((2, 1), 20);
        assert_eq!(map.get(&(1, 2)), Some(&10));
        assert_eq!(map.get(&(2, 1)), Some(&20));
        assert_eq!(map.get(&(3, 3)), None);
    }

    #[test]
    fn hashing_is_deterministic_across_instances() {
        let hash = |word: u64| {
            let mut h = FxHasher::default();
            h.write_u64(word);
            h.finish()
        };
        assert_eq!(hash(42), hash(42));
        assert_ne!(hash(42), hash(43));
    }

    #[test]
    fn byte_slices_hash_like_their_words() {
        let mut a = FxHasher::default();
        a.write(&7u64.to_le_bytes());
        let mut b = FxHasher::default();
        b.write_u64(7);
        assert_eq!(a.finish(), b.finish());
    }
}
