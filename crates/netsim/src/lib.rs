//! # svckit-netsim — the lower-level service substrate
//!
//! "The lower level service provides physical interconnection and (reliable
//! or unreliable) data transfer between protocol entities." (Section 2.)
//! This crate is that lower-level service, built as a **deterministic
//! discrete-event simulator** so that every experiment in the kit is
//! reproducible:
//!
//! * [`Simulator`] — the event loop: a logical clock, a priority queue of
//!   scheduled deliveries and timers, and a seeded PRNG;
//! * [`Process`] — the behaviour attached to each node (protocol entities,
//!   middleware engines and user parts all implement it);
//! * [`LinkConfig`] — per-link latency, jitter, loss, duplication and
//!   ordering, letting one simulator offer the paper's whole spectrum of
//!   lower-level services: "connectionless data transfer (e.g., 'send and
//!   pray')" ([`LinkConfig::lossy`]) up to reliable in-order transfer of a
//!   sequence of octets ([`LinkConfig::reliable_stream`]);
//! * [`NetMetrics`] — messages/bytes sent, delivered and dropped, the raw
//!   material for the experiment tables.
//!
//! Every [`Context`] handed to a process can also record service-primitive
//! occurrences ([`Context::record_primitive`]); the merged, time-ordered
//! [`Trace`](svckit_model::Trace) is returned in the [`SimReport`] and fed
//! straight into the `svckit-model` conformance checker.
//!
//! # Example: ping-pong over a 1 ms link
//!
//! ```
//! use svckit_model::{Duration, PartId};
//! use svckit_netsim::{Context, LinkConfig, Payload, Process, SimConfig, Simulator};
//!
//! struct Ping;
//! struct Pong;
//!
//! impl Process for Ping {
//!     fn on_start(&mut self, ctx: &mut Context<'_>) {
//!         ctx.send(PartId::new(2), b"ping".to_vec());
//!     }
//!     fn on_message(&mut self, _ctx: &mut Context<'_>, _from: PartId, payload: Payload) {
//!         assert_eq!(&payload[..], b"pong");
//!     }
//! }
//! impl Process for Pong {
//!     fn on_message(&mut self, ctx: &mut Context<'_>, from: PartId, _payload: Payload) {
//!         ctx.send(from, b"pong".to_vec());
//!     }
//! }
//!
//! let mut sim = Simulator::new(SimConfig::new(42).default_link(LinkConfig::lan()));
//! sim.add_process(PartId::new(1), Box::new(Ping));
//! sim.add_process(PartId::new(2), Box::new(Pong));
//! let report = sim.run_to_quiescence(Duration::from_secs(1)).unwrap();
//! assert_eq!(report.metrics().messages_delivered(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod hash;
mod link;
mod metrics;
mod rng;
mod shard;
mod sim;
mod wheel;

pub use link::LinkConfig;
pub use metrics::NetMetrics;
pub use rng::DeterministicRng;
pub use sim::{
    Context, Payload, Process, QueueBackend, SimConfig, SimError, SimReport, Simulator, TimerId,
};
pub use svckit_obs::TraceCtx;
