//! Link quality models.
//!
//! A [`LinkConfig`] describes the data-transfer characteristics between one
//! ordered pair of nodes. The presets mirror the lower-level services named
//! in the paper: a reliable octet-stream ("the data transfer service used
//! internally by middleware platforms"), a reliable datagram service, and an
//! unreliable "send and pray" service.

use svckit_model::Duration;

/// Transfer characteristics of a directed link.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkConfig {
    latency: Duration,
    jitter: Duration,
    loss: f64,
    duplicate: f64,
    ordered: bool,
    bandwidth: Option<u64>,
}

impl LinkConfig {
    /// A perfect link: fixed latency, no jitter, no loss, ordered delivery.
    pub fn perfect(latency: Duration) -> Self {
        LinkConfig {
            latency,
            jitter: Duration::ZERO,
            loss: 0.0,
            duplicate: 0.0,
            ordered: true,
            bandwidth: None,
        }
    }

    /// A LAN-like link: 500 µs latency, 100 µs jitter, lossless, ordered.
    pub fn lan() -> Self {
        LinkConfig::perfect(Duration::from_micros(500)).with_jitter(Duration::from_micros(100))
    }

    /// A WAN-like link: 20 ms latency, 5 ms jitter, lossless, ordered.
    pub fn wan() -> Self {
        LinkConfig::perfect(Duration::from_millis(20)).with_jitter(Duration::from_millis(5))
    }

    /// The reliable octet-stream service of the paper's Section 4.2:
    /// lossless, in-order, fixed latency plus jitter.
    pub fn reliable_stream(latency: Duration, jitter: Duration) -> Self {
        LinkConfig::perfect(latency).with_jitter(jitter)
    }

    /// A reliable datagram service: lossless but unordered (messages may
    /// overtake one another under jitter).
    pub fn reliable_datagram(latency: Duration, jitter: Duration) -> Self {
        let mut cfg = LinkConfig::perfect(latency).with_jitter(jitter);
        cfg.ordered = false;
        cfg
    }

    /// An unreliable, unordered, "send and pray" datagram service.
    pub fn lossy(latency: Duration, jitter: Duration, loss: f64) -> Self {
        let mut cfg = LinkConfig::reliable_datagram(latency, jitter);
        cfg.loss = loss.clamp(0.0, 1.0);
        cfg
    }

    /// Sets the jitter bound (builder-style). Actual per-message jitter is
    /// uniform in `[0, jitter]`.
    #[must_use]
    pub fn with_jitter(mut self, jitter: Duration) -> Self {
        self.jitter = jitter;
        self
    }

    /// Sets the loss probability (builder-style, clamped to `[0, 1]`).
    #[must_use]
    pub fn with_loss(mut self, loss: f64) -> Self {
        self.loss = loss.clamp(0.0, 1.0);
        self
    }

    /// Sets the duplication probability (builder-style, clamped to
    /// `[0, 1]`).
    #[must_use]
    pub fn with_duplication(mut self, duplicate: f64) -> Self {
        self.duplicate = duplicate.clamp(0.0, 1.0);
        self
    }

    /// Sets whether delivery preserves per-pair FIFO order (builder-style).
    #[must_use]
    pub fn with_ordering(mut self, ordered: bool) -> Self {
        self.ordered = ordered;
        self
    }

    /// Limits the link to `bytes_per_sec` (builder-style). Each message
    /// then occupies the link for its serialization time, and back-to-back
    /// sends queue at the sender — the classic transmission-delay model.
    /// Unlimited by default.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_sec` is zero.
    #[must_use]
    pub fn with_bandwidth(mut self, bytes_per_sec: u64) -> Self {
        assert!(bytes_per_sec > 0, "bandwidth must be positive");
        self.bandwidth = Some(bytes_per_sec);
        self
    }

    /// Base one-way latency.
    pub fn latency(&self) -> Duration {
        self.latency
    }

    /// Jitter bound.
    pub fn jitter(&self) -> Duration {
        self.jitter
    }

    /// Loss probability.
    pub fn loss(&self) -> f64 {
        self.loss
    }

    /// Duplication probability.
    pub fn duplicate(&self) -> f64 {
        self.duplicate
    }

    /// Whether per-pair FIFO order is preserved.
    pub fn is_ordered(&self) -> bool {
        self.ordered
    }

    /// The bandwidth limit in bytes per second, if any.
    pub fn bandwidth(&self) -> Option<u64> {
        self.bandwidth
    }

    /// Serialization time of a `bytes`-sized message on this link
    /// ([`Duration::ZERO`] when unlimited).
    pub fn transmission_time(&self, bytes: usize) -> Duration {
        match self.bandwidth {
            None => Duration::ZERO,
            Some(rate) => {
                let micros = (bytes as u128 * 1_000_000).div_ceil(rate as u128);
                Duration::from_micros(micros as u64)
            }
        }
    }
}

impl Default for LinkConfig {
    /// The default link is [`LinkConfig::lan`].
    fn default() -> Self {
        LinkConfig::lan()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_expected_properties() {
        assert!(LinkConfig::lan().is_ordered());
        assert_eq!(LinkConfig::lan().loss(), 0.0);
        assert!(
            !LinkConfig::reliable_datagram(Duration::from_millis(1), Duration::ZERO).is_ordered()
        );
        let lossy = LinkConfig::lossy(Duration::from_millis(1), Duration::ZERO, 0.25);
        assert_eq!(lossy.loss(), 0.25);
        assert!(!lossy.is_ordered());
    }

    #[test]
    fn probabilities_are_clamped() {
        let cfg = LinkConfig::lan().with_loss(2.0).with_duplication(-1.0);
        assert_eq!(cfg.loss(), 1.0);
        assert_eq!(cfg.duplicate(), 0.0);
    }

    #[test]
    fn default_is_lan() {
        assert_eq!(LinkConfig::default(), LinkConfig::lan());
    }

    #[test]
    fn bandwidth_yields_transmission_time() {
        let link = LinkConfig::lan().with_bandwidth(1_000_000); // 1 MB/s
        assert_eq!(link.bandwidth(), Some(1_000_000));
        assert_eq!(link.transmission_time(1_000_000), Duration::from_secs(1));
        assert_eq!(link.transmission_time(1_000), Duration::from_millis(1));
        // Rounds up: even one byte takes a microsecond.
        assert_eq!(link.transmission_time(1), Duration::from_micros(1));
        assert_eq!(LinkConfig::lan().transmission_time(1 << 20), Duration::ZERO);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_is_rejected() {
        let _ = LinkConfig::lan().with_bandwidth(0);
    }

    #[test]
    fn builder_methods_chain() {
        let cfg = LinkConfig::perfect(Duration::from_millis(2))
            .with_jitter(Duration::from_micros(50))
            .with_ordering(false);
        assert_eq!(cfg.latency(), Duration::from_millis(2));
        assert_eq!(cfg.jitter(), Duration::from_micros(50));
        assert!(!cfg.is_ordered());
    }
}
