//! Network-level metrics.

use std::collections::BTreeMap;
use std::fmt;

use svckit_model::PartId;

/// Counters accumulated by the simulator during a run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NetMetrics {
    messages_sent: u64,
    messages_delivered: u64,
    messages_dropped: u64,
    messages_duplicated: u64,
    bytes_sent: u64,
    bytes_delivered: u64,
    undeliverable: u64,
    per_sender: BTreeMap<PartId, u64>,
}

impl NetMetrics {
    pub(crate) fn new() -> Self {
        NetMetrics::default()
    }

    pub(crate) fn record_send(&mut self, from: PartId, bytes: usize) {
        self.messages_sent += 1;
        self.bytes_sent += bytes as u64;
        *self.per_sender.entry(from).or_insert(0) += 1;
    }

    pub(crate) fn record_delivery(&mut self, bytes: usize) {
        self.messages_delivered += 1;
        self.bytes_delivered += bytes as u64;
    }

    pub(crate) fn record_drop(&mut self) {
        self.messages_dropped += 1;
    }

    pub(crate) fn record_duplicate(&mut self) {
        self.messages_duplicated += 1;
    }

    pub(crate) fn record_undeliverable(&mut self) {
        self.undeliverable += 1;
    }

    /// Folds another counter set into this one (sharded-engine merge).
    pub(crate) fn absorb(&mut self, other: &NetMetrics) {
        self.messages_sent += other.messages_sent;
        self.messages_delivered += other.messages_delivered;
        self.messages_dropped += other.messages_dropped;
        self.messages_duplicated += other.messages_duplicated;
        self.bytes_sent += other.bytes_sent;
        self.bytes_delivered += other.bytes_delivered;
        self.undeliverable += other.undeliverable;
        for (&sender, &count) in &other.per_sender {
            *self.per_sender.entry(sender).or_insert(0) += count;
        }
    }

    /// Messages handed to the network by processes.
    pub fn messages_sent(&self) -> u64 {
        self.messages_sent
    }

    /// Messages delivered to a destination process (duplicates included).
    pub fn messages_delivered(&self) -> u64 {
        self.messages_delivered
    }

    /// Messages dropped by lossy links.
    pub fn messages_dropped(&self) -> u64 {
        self.messages_dropped
    }

    /// Extra copies injected by duplicating links.
    pub fn messages_duplicated(&self) -> u64 {
        self.messages_duplicated
    }

    /// Payload bytes handed to the network.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent
    }

    /// Payload bytes delivered (duplicates included).
    pub fn bytes_delivered(&self) -> u64 {
        self.bytes_delivered
    }

    /// Messages addressed to nodes that do not exist.
    pub fn undeliverable(&self) -> u64 {
        self.undeliverable
    }

    /// Messages sent per sender.
    pub fn per_sender(&self) -> &BTreeMap<PartId, u64> {
        &self.per_sender
    }
}

impl fmt::Display for NetMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sent={} delivered={} dropped={} duplicated={} bytes_sent={} bytes_delivered={} undeliverable={}",
            self.messages_sent,
            self.messages_delivered,
            self.messages_dropped,
            self.messages_duplicated,
            self.bytes_sent,
            self.bytes_delivered,
            self.undeliverable
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = NetMetrics::new();
        m.record_send(PartId::new(1), 10);
        m.record_send(PartId::new(1), 5);
        m.record_send(PartId::new(2), 1);
        m.record_delivery(10);
        m.record_drop();
        m.record_duplicate();
        m.record_undeliverable();
        assert_eq!(m.messages_sent(), 3);
        assert_eq!(m.bytes_sent(), 16);
        assert_eq!(m.messages_delivered(), 1);
        assert_eq!(m.bytes_delivered(), 10);
        assert_eq!(m.messages_dropped(), 1);
        assert_eq!(m.messages_duplicated(), 1);
        assert_eq!(m.undeliverable(), 1);
        assert_eq!(m.per_sender()[&PartId::new(1)], 2);
    }

    #[test]
    fn display_summarises_all_counters() {
        let m = NetMetrics::new();
        let s = m.to_string();
        for field in ["sent=", "delivered=", "dropped=", "undeliverable="] {
            assert!(s.contains(field), "{s}");
        }
    }
}
