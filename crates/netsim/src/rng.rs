//! Deterministic pseudo-random numbers.
//!
//! The simulator must be bit-for-bit reproducible across runs and platforms,
//! so it uses a small self-contained SplitMix64 generator rather than an
//! OS-seeded source. SplitMix64 passes BigCrush for this use (jitter, loss
//! coins) and needs eight bytes of state.

/// A deterministic SplitMix64 pseudo-random number generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeterministicRng {
    state: u64,
}

impl DeterministicRng {
    /// Creates a generator from a seed. Equal seeds yield equal sequences.
    pub fn new(seed: u64) -> Self {
        DeterministicRng { state: seed }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 high-quality bits → [0,1) with full double precision.
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A uniform integer in `[0, bound)`.
    ///
    /// Returns 0 when `bound` is 0.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        // Multiply-shift; bias is negligible for simulation purposes.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn coin(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.next_f64() < p
        }
    }

    /// Derives an independent generator (e.g. one per link) such that
    /// streams do not overlap in practice.
    pub fn fork(&mut self) -> DeterministicRng {
        DeterministicRng::new(self.next_u64() ^ 0xA5A5_A5A5_A5A5_A5A5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_seeds_equal_sequences() {
        let mut a = DeterministicRng::new(7);
        let mut b = DeterministicRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DeterministicRng::new(1);
        let mut b = DeterministicRng::new(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn f64_stays_in_unit_interval() {
        let mut rng = DeterministicRng::new(3);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_below_respects_bound() {
        let mut rng = DeterministicRng::new(9);
        for _ in 0..10_000 {
            assert!(rng.next_below(13) < 13);
        }
        assert_eq!(rng.next_below(0), 0);
        assert_eq!(rng.next_below(1), 0);
    }

    #[test]
    fn coin_extremes_are_deterministic() {
        let mut rng = DeterministicRng::new(5);
        assert!(!rng.coin(0.0));
        assert!(rng.coin(1.0));
        assert!(!rng.coin(-0.5));
        assert!(rng.coin(1.5));
    }

    #[test]
    fn coin_frequency_tracks_probability() {
        let mut rng = DeterministicRng::new(11);
        let hits = (0..100_000).filter(|_| rng.coin(0.3)).count();
        let freq = hits as f64 / 100_000.0;
        assert!((freq - 0.3).abs() < 0.01, "frequency {freq}");
    }

    #[test]
    fn fork_produces_distinct_stream() {
        let mut a = DeterministicRng::new(13);
        let mut b = a.fork();
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
