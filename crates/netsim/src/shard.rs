//! The conservative-lookahead sharded simulation engine.
//!
//! Selected by [`SimConfig::shards`] ≥ 2. Nodes are partitioned over `S`
//! shards; each shard owns its own event queue (timer wheel or heap),
//! clock, RNG streams, timer table, and metrics, and runs on its own
//! scoped thread. The shards advance in lock-step *windows*:
//!
//! 1. **Exchange** — every shard drains its inbound mailboxes (one
//!    `Mutex<Vec<_>>` per ordered shard pair, written only by the source
//!    shard, drained only by the destination) into its local queue, then
//!    publishes the firing instant of its earliest pending event.
//! 2. **Agree** — after a barrier, every shard independently computes the
//!    same global minimum `T` over the published instants. If no shard
//!    has work, or `T` is past the run deadline, the run stops.
//! 3. **Advance** — each shard processes its local events with firing
//!    instant in `[T, T + W)`, where the *lookahead* `W` is the minimum
//!    link latency in the current topology. Sends to nodes on other
//!    shards are filed into the pairwise mailboxes; the next window picks
//!    them up.
//!
//! # Why the lookahead bound is safe
//!
//! Every event processed in a window fires at some `t ∈ [T, T + W)`. A
//! message sent while processing it departs no earlier than `t` and
//! arrives at `t + queueing + transmission + latency + jitter`, all
//! non-negative and `latency ≥ W` by definition of `W` (an ordered
//! link's FIFO clamp only moves arrivals later). So every arrival —
//! local or cross-shard — lands at or after `T + W`, i.e. strictly
//! beyond the window every shard is currently processing. No shard can
//! ever receive an event in its past, which is exactly the conservative
//! PDES (Chandy–Misra style) safety condition; `W = 0` is rejected as
//! [`SimError::ZeroLookahead`] because windows would have zero width.
//!
//! # Why the output is identical for every shard count ≥ 2
//!
//! Everything observable is a function of *per-node* and *per-directed-
//! pair* histories, and each of those histories is computed from data
//! that never depends on the partition:
//!
//! * Events carry the total-order key `(at, provenance_key)` (see
//!   [`crate::sim::provenance_key`]); a shard processes its local events
//!   in exactly that order, because windows only ever defer work, never
//!   reorder it, and the safety argument above means nothing arrives
//!   late. Each node's dispatch sequence is therefore the same for any
//!   placement of the other nodes.
//! * Link randomness (loss, duplication, jitter) is drawn from a
//!   dedicated per-directed-pair stream seeded from `(seed, from, to)`,
//!   advanced in the sender's dispatch order. Node randomness
//!   ([`Context::rand_u64`]) comes from the same per-node streams as the
//!   single engine.
//! * Metrics are sums of per-shard counters; the merged trace is sorted
//!   by `(time, start-phase, dispatching event key, record index)` —
//!   both aggregations are independent of which shard computed what.
//!
//! # Relation to `shards = 1`
//!
//! The single engine draws link randomness from one global stream in
//! global event order, which no partition can reproduce; on *lossy or
//! jittered* links the sharded engine is therefore a (deterministic)
//! different sample of the same distribution. On deterministic links —
//! zero jitter, loss 0 or 1, no duplication — no link randomness is ever
//! consumed, node RNG streams coincide, and both engines share one event
//! order, so `shards = 1` and `shards = N` produce byte-identical
//! reports. That envelope is what the sharded goldens, the oracle suite
//! in `tests/shard_oracle.rs`, and the CI `--shards 4` vs `--shards 1`
//! `cmp` step pin down.
//!
//! [`SimConfig::shards`]: crate::sim::SimConfig::shards
//! [`Context::rand_u64`]: crate::sim::Context::rand_u64

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Barrier, Mutex};

use svckit_model::{Duration, Instant, PartId, PrimitiveEvent};
use svckit_obs::TraceCtx;

use crate::hash::FastMap;
use crate::metrics::NetMetrics;
use crate::rng::DeterministicRng;
use crate::sim::{
    node_seed, provenance_key, Action, Context, EventKind, EventQueue, LinkTable, NodeTracer,
    Payload, Process, Scheduled, SimConfig, SimError, SimReport, TimerId, TraceBuf, TraceDest,
};

/// Sentinel published by a shard with an empty queue.
const IDLE: u64 = u64::MAX;

/// Seed of the dedicated RNG stream for link draws on the directed pair
/// `from → to`. Distinct multipliers keep `(a, b)` and `(b, a)` apart.
fn pair_seed(seed: u64, from: PartId, to: PartId) -> u64 {
    seed.wrapping_add(from.raw().wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(to.raw().wrapping_mul(0xC2B2_AE3D_27D4_EB4F))
        ^ 0x94D0_49BB_1331_11EB
}

/// One spooled trace record with the sort key that reproduces the global
/// single-engine insertion order: records from the start phase come
/// first (in node order), then records grouped by the event that was
/// being dispatched, in that event's total-order position.
#[derive(Debug)]
struct SpooledRecord {
    time_us: u64,
    phase: u8,
    dispatch_key: u128,
    idx: u32,
    event: PrimitiveEvent,
}

/// Per-shard spool of service primitives recorded during a run, merged
/// into the shared [`TraceBuf`] after the worker threads join.
#[derive(Debug, Default)]
pub(crate) struct ShardTrace {
    records: Vec<SpooledRecord>,
    time_us: u64,
    phase: u8,
    dispatch_key: u128,
    idx: u32,
}

impl ShardTrace {
    /// Called by the engine before every handler invocation.
    fn begin_dispatch(&mut self, time_us: u64, phase: u8, dispatch_key: u128) {
        self.time_us = time_us;
        self.phase = phase;
        self.dispatch_key = dispatch_key;
        self.idx = 0;
    }

    pub(crate) fn push(&mut self, event: PrimitiveEvent) {
        self.records.push(SpooledRecord {
            time_us: self.time_us,
            phase: self.phase,
            dispatch_key: self.dispatch_key,
            idx: self.idx,
            event,
        });
        self.idx += 1;
    }
}

const PHASE_START: u8 = 0;
const PHASE_EVENT: u8 = 1;

/// One shard: a vertical slice of the simulation owning a subset of the
/// nodes and every piece of state their handlers can touch.
struct Shard {
    index: u32,
    seed: u64,
    /// Last locally processed firing instant.
    clock: Instant,
    queue: EventQueue,
    procs: FastMap<PartId, Box<dyn Process>>,
    node_rngs: FastMap<PartId, DeterministicRng>,
    /// Per-directed-pair link RNG streams, created lazily on first draw.
    pair_rngs: FastMap<(PartId, PartId), DeterministicRng>,
    /// Per-node counts of scheduled events, feeding `provenance_key`.
    sched_counts: FastMap<PartId, u64>,
    timer_generation: FastMap<PartId, FastMap<TimerId, u64>>,
    /// Per-node trace-id mints and open-request slots. Owned by the shard
    /// (not the per-run worker recorder), so ids persist across run
    /// slices; a node's dispatch order is shard-invariant, so every shard
    /// count mints identical ids (see [`NodeTracer`]).
    tracers: FastMap<PartId, NodeTracer>,
    last_arrival: FastMap<(PartId, PartId), Instant>,
    link_busy_until: FastMap<(PartId, PartId), Instant>,
    metrics: NetMetrics,
    trace: ShardTrace,
    action_buf: Vec<Action>,
    run_buf: Vec<Scheduled>,
    /// Cross-shard sends produced by the current window, flushed into the
    /// pairwise mailboxes before the next exchange barrier.
    outgoing: Vec<(u32, Scheduled)>,
    events_processed: u64,
    peak_queue_len: usize,
}

impl Shard {
    fn new(index: u32, seed: u64, backend: crate::sim::QueueBackend) -> Self {
        Shard {
            index,
            seed,
            clock: Instant::ZERO,
            queue: EventQueue::new(backend),
            procs: FastMap::default(),
            node_rngs: FastMap::default(),
            pair_rngs: FastMap::default(),
            sched_counts: FastMap::default(),
            timer_generation: FastMap::default(),
            tracers: FastMap::default(),
            last_arrival: FastMap::default(),
            link_busy_until: FastMap::default(),
            metrics: NetMetrics::new(),
            trace: ShardTrace::default(),
            action_buf: Vec::new(),
            run_buf: Vec::new(),
            outgoing: Vec::new(),
            events_processed: 0,
            peak_queue_len: 0,
        }
    }

    /// Runs one handler and applies its actions. `dispatch_key` is the
    /// total-order position of whatever triggered the handler; it anchors
    /// the deterministic trace merge.
    #[allow(clippy::too_many_arguments)]
    fn dispatch<F>(
        &mut self,
        node: PartId,
        now: Instant,
        phase: u8,
        dispatch_key: u128,
        trace_ctx: Option<TraceCtx>,
        registry: &FastMap<PartId, u32>,
        links: &LinkTable,
        call: F,
    ) where
        F: FnOnce(&mut dyn Process, &mut Context<'_>),
    {
        let mut actions = std::mem::take(&mut self.action_buf);
        if let Some(process) = self.procs.get_mut(&node) {
            let rng = self
                .node_rngs
                .get_mut(&node)
                .expect("node rng created with the process");
            self.trace
                .begin_dispatch(now.as_micros(), phase, dispatch_key);
            let mut ctx = Context {
                now,
                id: node,
                actions: &mut actions,
                rng,
                trace: TraceDest::Shard(&mut self.trace),
                cur_trace: trace_ctx,
                tracer: self.tracers.entry(node).or_default(),
            };
            call(process.as_mut(), &mut ctx);
        }
        self.apply_actions(node, now, &mut actions, registry, links);
        self.action_buf = actions;
    }

    /// The sharded twin of `SingleSim::apply_actions`: identical link
    /// semantics, but link randomness comes from the per-pair stream and
    /// cross-shard deliveries are routed through `outgoing`.
    fn apply_actions(
        &mut self,
        node: PartId,
        now: Instant,
        actions: &mut Vec<Action>,
        registry: &FastMap<PartId, u32>,
        links: &LinkTable,
    ) {
        for action in actions.drain(..) {
            match action {
                Action::Send {
                    to,
                    payload,
                    ctx,
                    retransmit,
                } => {
                    self.metrics.record_send(node, payload.len());
                    svckit_obs::obs_count!("net.sends");
                    let Some(&target_shard) = registry.get(&to) else {
                        self.metrics.record_undeliverable();
                        svckit_obs::obs_count!("net.undeliverable");
                        continue;
                    };
                    let link = links.link_for(node, to);
                    let loss = link.loss();
                    let duplicate_p = link.duplicate();
                    let latency = link.latency();
                    let jitter_bound = link.jitter().as_micros() + 1;
                    let ordered = link.is_ordered();
                    let transmission = link.transmission_time(payload.len());
                    // `coin` never draws for probabilities 0 and 1, and a
                    // jitter bound of 1 µs always yields 0 — so on fully
                    // deterministic links the pair stream is never even
                    // created, which is what makes the single engine's
                    // global stream irrelevant there.
                    if loss > 0.0 && self.pair_rng(node, to).coin(loss) {
                        self.metrics.record_drop();
                        svckit_obs::obs_count!("net.drops");
                        match ctx {
                            // Root-parented for the same reason as the
                            // single engine: resends carry the original
                            // send's context.
                            Some(t) => svckit_obs::obs_event!(
                                "net.drop",
                                "net",
                                to.raw(),
                                now.as_micros(),
                                t.trace_id,
                                0u64,
                                t.parent_id
                            ),
                            None => {
                                svckit_obs::obs_event!("net.drop", "net", to.raw(), now.as_micros())
                            }
                        }
                        continue;
                    }
                    let duplicate = duplicate_p > 0.0 && self.pair_rng(node, to).coin(duplicate_p);
                    let copies = if duplicate { 2 } else { 1 };
                    if duplicate {
                        self.metrics.record_duplicate();
                        svckit_obs::obs_count!("net.duplicates");
                    }
                    let mut depart = now;
                    if transmission > Duration::ZERO {
                        let busy = self
                            .link_busy_until
                            .entry((node, to))
                            .or_insert(Instant::ZERO);
                        if depart < *busy {
                            depart = *busy;
                        }
                        depart += transmission;
                        *busy = depart;
                    }
                    // Time spent queued behind the link (serialization /
                    // bandwidth backlog) is its own attributable segment.
                    if let Some(t) = ctx {
                        if depart > now {
                            let qid = self.tracers.entry(node).or_default().mint(node);
                            svckit_obs::obs_span!(
                                svckit_obs::trace::SPAN_QUEUE_WAIT,
                                "net",
                                node.raw(),
                                0u64,
                                now.as_micros(),
                                depart.as_micros(),
                                t.trace_id,
                                qid,
                                t.parent_id
                            );
                        }
                    }
                    let payload_len = payload.len();
                    let mut payload = Some(payload);
                    for copy in 0..copies {
                        let jitter = if jitter_bound > 1 {
                            Duration::from_micros(self.pair_rng(node, to).next_below(jitter_bound))
                        } else {
                            Duration::ZERO
                        };
                        let mut at = depart + latency + jitter;
                        if ordered {
                            let last = self.last_arrival.entry((node, to)).or_insert(Instant::ZERO);
                            if at < *last {
                                at = *last;
                            }
                            *last = at;
                        }
                        svckit_obs::obs_link!(
                            node.raw(),
                            to.raw(),
                            payload_len,
                            at.saturating_since(now).as_micros()
                        );
                        let deliver_ctx = match ctx {
                            Some(t) => {
                                // Each copy gets its own transit span, so
                                // duplicated deliveries stay distinguishable
                                // in the flame graph.
                                let sid = self.tracers.entry(node).or_default().mint(node);
                                let span_name = if retransmit {
                                    svckit_obs::trace::SPAN_RETRANSMIT
                                } else {
                                    svckit_obs::trace::SPAN_TRANSIT
                                };
                                svckit_obs::obs_span!(
                                    span_name,
                                    "net",
                                    to.raw(),
                                    node.raw(),
                                    depart.as_micros(),
                                    at.as_micros(),
                                    t.trace_id,
                                    sid,
                                    t.parent_id
                                );
                                Some(t.hop(sid))
                            }
                            None => {
                                svckit_obs::obs_span!(
                                    "net.transit",
                                    "net",
                                    to.raw(),
                                    now.as_micros(),
                                    at.as_micros()
                                );
                                None
                            }
                        };
                        let payload = if copy + 1 == copies {
                            payload.take().expect("one payload per copy loop")
                        } else {
                            Payload::clone(payload.as_ref().expect("clone before the last copy"))
                        };
                        self.route(
                            node,
                            now,
                            target_shard,
                            at,
                            EventKind::Deliver {
                                to,
                                from: node,
                                payload,
                                ctx: deliver_ctx,
                            },
                        );
                    }
                }
                Action::SetTimer { delay, id, ctx } => {
                    let generation = self
                        .timer_generation
                        .entry(node)
                        .or_default()
                        .entry(id)
                        .and_modify(|g| *g += 1)
                        .or_insert(1);
                    let generation = *generation;
                    // Timers are always local to the node's own shard.
                    self.route(
                        node,
                        now,
                        self.index,
                        now + delay,
                        EventKind::Timer {
                            node,
                            id,
                            generation,
                            ctx,
                        },
                    );
                }
                Action::CancelTimer { id } => {
                    self.timer_generation
                        .entry(node)
                        .or_default()
                        .entry(id)
                        .and_modify(|g| *g += 1)
                        .or_insert(1);
                }
            }
        }
    }

    fn pair_rng(&mut self, from: PartId, to: PartId) -> &mut DeterministicRng {
        let seed = self.seed;
        self.pair_rngs
            .entry((from, to))
            .or_insert_with(|| DeterministicRng::new(pair_seed(seed, from, to)))
    }

    /// Stamps the event with its provenance key and files it locally or
    /// into the outgoing buffer.
    fn route(
        &mut self,
        origin: PartId,
        sched_at: Instant,
        target_shard: u32,
        at: Instant,
        kind: EventKind,
    ) {
        let count = self.sched_counts.entry(origin).or_insert(0);
        *count += 1;
        let key = provenance_key(sched_at, origin, *count);
        let event = Scheduled { at, key, kind };
        if target_shard == self.index {
            self.queue.push(event);
        } else {
            self.outgoing.push((target_shard, event));
        }
    }

    /// Dispatches one popped event (clock, metrics, obs, handler).
    fn dispatch_event(
        &mut self,
        event: Scheduled,
        registry: &FastMap<PartId, u32>,
        links: &LinkTable,
    ) {
        debug_assert!(event.at >= self.clock, "shard time went backwards");
        self.clock = event.at;
        self.events_processed += 1;
        svckit_obs::obs_count!("net.events");
        let key = event.key;
        match event.kind {
            EventKind::Deliver {
                to,
                from,
                payload,
                ctx,
            } => {
                self.metrics.record_delivery(payload.len());
                svckit_obs::obs_count!("net.deliveries");
                svckit_obs::obs_count!("net.delivered_bytes", payload.len());
                self.dispatch(
                    to,
                    event.at,
                    PHASE_EVENT,
                    key,
                    ctx,
                    registry,
                    links,
                    |p, c| {
                        p.on_message(c, from, payload);
                    },
                );
            }
            EventKind::Timer {
                node,
                id,
                generation,
                ctx,
            } => {
                let live = self
                    .timer_generation
                    .get(&node)
                    .and_then(|timers| timers.get(&id));
                if live == Some(&generation) {
                    svckit_obs::obs_count!("net.timer_fires");
                    self.dispatch(
                        node,
                        event.at,
                        PHASE_EVENT,
                        key,
                        ctx,
                        registry,
                        links,
                        |p, c| {
                            p.on_timer(c, id);
                        },
                    );
                } else {
                    svckit_obs::obs_count!("net.timer_stale");
                }
            }
        }
    }

    /// Processes every local event with firing instant below
    /// `window_end_us` (exclusive) and at or below the deadline. Newly
    /// scheduled local events that still fall inside the window are
    /// picked up in the same pass, so a window fully exhausts the shard's
    /// local causality.
    fn process_window(
        &mut self,
        window_end_us: u64,
        deadline: Instant,
        registry: &FastMap<PartId, u32>,
        links: &LinkTable,
    ) {
        let mut run = std::mem::take(&mut self.run_buf);
        while let Some(at) = self.queue.next_at() {
            if at.as_micros() >= window_end_us || at > deadline {
                break;
            }
            self.queue.pop_run(&mut run);
            self.peak_queue_len = self.peak_queue_len.max(self.queue.len() + run.len());
            svckit_obs::obs_record!("net.queue_depth", self.queue.len());
            for event in run.drain(..) {
                self.dispatch_event(event, registry, links);
            }
        }
        run.clear();
        self.run_buf = run;
    }

    /// The lock-step worker: exchange, agree, advance — until every shard
    /// is idle or the next global event is past the deadline.
    #[allow(clippy::too_many_arguments)]
    fn worker(
        &mut self,
        barrier: &Barrier,
        next_at: &[AtomicU64],
        outboxes: &[Vec<Mutex<Vec<Scheduled>>>],
        registry: &FastMap<PartId, u32>,
        links: &LinkTable,
        lookahead_us: u64,
        deadline: Instant,
    ) {
        let me = self.index as usize;
        let deadline_us = deadline.as_micros();
        loop {
            // Exchange: by this barrier every shard has flushed the
            // previous window's sends, so the mailbox matrix is stable.
            barrier.wait();
            for column in outboxes {
                let mut inbox = column[me].lock().expect("mailbox poisoned");
                for event in inbox.drain(..) {
                    self.queue.push(event);
                }
            }
            next_at[me].store(
                self.queue.next_at().map_or(IDLE, |at| at.as_micros()),
                Ordering::SeqCst,
            );
            // Agree: all published; every shard computes the same minimum.
            barrier.wait();
            let t = next_at
                .iter()
                .map(|a| a.load(Ordering::SeqCst))
                .min()
                .expect("at least one shard");
            if t == IDLE || t > deadline_us {
                return;
            }
            // Advance: the window [T, T + W) is safe for every shard.
            self.process_window(t.saturating_add(lookahead_us), deadline, registry, links);
            for (target, event) in self.outgoing.drain(..) {
                outboxes[me][target as usize]
                    .lock()
                    .expect("mailbox poisoned")
                    .push(event);
            }
        }
    }
}

/// The sharded engine behind [`crate::sim::Simulator`]. See the module
/// docs for the protocol and its guarantees.
pub(crate) struct ShardedSim {
    config: SimConfig,
    clock: Instant,
    started: bool,
    /// Global node registry: node → owning shard. Also the authority on
    /// which nodes exist (the undeliverable check).
    node_shard: FastMap<PartId, u32>,
    /// Processes staged before the first run; node → shard binding
    /// happens once, when the full population is known.
    staged: BTreeMap<PartId, Box<dyn Process>>,
    shards: Vec<Shard>,
    links: LinkTable,
    trace: TraceBuf,
}

impl ShardedSim {
    pub(crate) fn new(config: SimConfig) -> Self {
        let shard_count = config.shard_count();
        let shards = (0..shard_count)
            .map(|i| Shard::new(i, config.seed(), config.queue()))
            .collect();
        let links = LinkTable::new(config.default_link.clone());
        ShardedSim {
            config,
            clock: Instant::ZERO,
            started: false,
            node_shard: FastMap::default(),
            staged: BTreeMap::new(),
            shards,
            links,
            trace: TraceBuf::new(),
        }
    }

    pub(crate) fn add_process(
        &mut self,
        id: PartId,
        process: Box<dyn Process>,
    ) -> Result<(), SimError> {
        if self.staged.contains_key(&id) || self.node_shard.contains_key(&id) {
            return Err(SimError::DuplicateNode(id));
        }
        if self.started {
            // Late registration (after the first run): bind immediately,
            // round-robin over the shards. Mirrors the single engine,
            // where a late process gets no `on_start` either.
            let shard = (self.node_shard.len() as u32) % self.shard_count();
            self.bind(id, process, shard);
        } else {
            self.staged.insert(id, process);
        }
        Ok(())
    }

    fn bind(&mut self, id: PartId, process: Box<dyn Process>, shard: u32) {
        self.node_shard.insert(id, shard);
        let s = &mut self.shards[shard as usize];
        s.node_rngs
            .insert(id, DeterministicRng::new(node_seed(self.config.seed(), id)));
        s.procs.insert(id, process);
    }

    pub(crate) fn links_mut(&mut self) -> &mut LinkTable {
        &mut self.links
    }

    pub(crate) fn now(&self) -> Instant {
        self.clock
    }

    pub(crate) fn shard_count(&self) -> u32 {
        self.shards.len() as u32
    }

    pub(crate) fn process_count(&self) -> usize {
        self.staged.len() + self.node_shard.len()
    }

    pub(crate) fn events_processed(&self) -> u64 {
        self.shards.iter().map(|s| s.events_processed).sum()
    }

    pub(crate) fn peak_queue_len(&self) -> usize {
        self.shards.iter().map(|s| s.peak_queue_len).sum()
    }

    /// Binds staged processes to shards (sorted node order, round-robin)
    /// and runs every `on_start` serially in global node order — the same
    /// order the single engine uses, so startup actions interleave
    /// identically.
    fn start_if_needed(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        let staged = std::mem::take(&mut self.staged);
        let count = self.shard_count();
        for (i, (id, process)) in staged.into_iter().enumerate() {
            self.bind(id, process, (i as u32) % count);
        }
        let mut ids: Vec<PartId> = self.node_shard.keys().copied().collect();
        ids.sort_unstable();
        for id in ids {
            let shard = self.node_shard[&id] as usize;
            // Anchor start-phase trace records at (t=0, node, 0) so the
            // merge reproduces the single engine's node-order startup.
            let dispatch_key = provenance_key(Instant::ZERO, id, 0);
            let (shard, registry, links) = {
                // Split borrows: the dispatched shard is mutable, the
                // registry and links are shared.
                (&mut self.shards[shard], &self.node_shard, &self.links)
            };
            shard.dispatch(
                id,
                Instant::ZERO,
                PHASE_START,
                dispatch_key,
                None,
                registry,
                links,
                |p, ctx| p.on_start(ctx),
            );
            // Startup actions may target any shard; route them now, while
            // everything is still single-threaded.
            Self::drain_outgoing_serial(&mut self.shards, shard_index_of(&self.node_shard, id));
        }
    }

    fn drain_outgoing_serial(shards: &mut [Shard], from: usize) {
        if shards[from].outgoing.is_empty() {
            return;
        }
        let outgoing = std::mem::take(&mut shards[from].outgoing);
        for (target, event) in outgoing {
            shards[target as usize].queue.push(event);
        }
    }

    pub(crate) fn run_to_quiescence(
        &mut self,
        max_elapsed: Duration,
    ) -> Result<SimReport, SimError> {
        if self.staged.is_empty() && self.node_shard.is_empty() {
            return Err(SimError::NoProcesses);
        }
        let lookahead = self.links.min_latency();
        if lookahead == Duration::ZERO {
            return Err(SimError::ZeroLookahead);
        }
        self.start_if_needed();
        let deadline = self.clock + max_elapsed;
        let shard_count = self.shards.len();

        let barrier = Barrier::new(shard_count);
        let next_at: Vec<AtomicU64> = (0..shard_count).map(|_| AtomicU64::new(IDLE)).collect();
        let outboxes: Vec<Vec<Mutex<Vec<Scheduled>>>> = (0..shard_count)
            .map(|_| (0..shard_count).map(|_| Mutex::new(Vec::new())).collect())
            .collect();
        let registry = &self.node_shard;
        let links = &self.links;
        let lookahead_us = lookahead.as_micros();

        // One scoped thread per shard, re-spawned per run slice: fault
        // injection between slices then needs no synchronization at all.
        // Each worker records obs under its own recorder; the recorders
        // are folded into the caller's in shard order afterwards, keeping
        // obs output independent of thread scheduling.
        let recorders: Vec<svckit_obs::Recorder> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .shards
                .iter_mut()
                .map(|shard| {
                    let barrier = &barrier;
                    let next_at = next_at.as_slice();
                    let outboxes = outboxes.as_slice();
                    scope.spawn(move || {
                        let ((), recorder) =
                            svckit_obs::with_recorder(svckit_obs::Recorder::new(), || {
                                shard.worker(
                                    barrier,
                                    next_at,
                                    outboxes,
                                    registry,
                                    links,
                                    lookahead_us,
                                    deadline,
                                );
                            });
                        recorder
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard worker panicked"))
                .collect()
        });
        for recorder in &recorders {
            svckit_obs::absorb_into_current(recorder);
        }

        // Deterministic trace merge: spooled records sort by
        // (time, phase, dispatching key, record index) — the exact order
        // the single engine would have appended them in.
        let mut spooled: Vec<SpooledRecord> = Vec::new();
        for shard in &mut self.shards {
            spooled.append(&mut shard.trace.records);
        }
        spooled.sort_by(|a, b| {
            (a.time_us, a.phase, a.dispatch_key, a.idx).cmp(&(
                b.time_us,
                b.phase,
                b.dispatch_key,
                b.idx,
            ))
        });
        for record in spooled {
            self.trace.push(record.event);
        }

        let quiescent = self.shards.iter_mut().all(|s| s.queue.is_empty());
        if quiescent {
            let last = self
                .shards
                .iter()
                .map(|s| s.clock)
                .max()
                .unwrap_or(self.clock);
            self.clock = self.clock.max(last);
        } else {
            self.clock = deadline;
        }
        let mut metrics = NetMetrics::new();
        for shard in &self.shards {
            metrics.absorb(&shard.metrics);
        }
        Ok(SimReport::assemble(
            self.clock,
            quiescent,
            metrics,
            self.trace.snapshot(),
        ))
    }
}

fn shard_index_of(registry: &FastMap<PartId, u32>, id: PartId) -> usize {
    registry[&id] as usize
}
