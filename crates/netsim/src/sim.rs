//! The discrete-event simulator core.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};
use std::error::Error;
use std::fmt;
use std::str::FromStr;
use std::sync::Arc;

use svckit_model::{Duration, Instant, PartId, PrimitiveEvent, Sap, Trace, Value};
use svckit_obs::TraceCtx;

use crate::hash::FastMap;
use crate::link::LinkConfig;
use crate::metrics::NetMetrics;
use crate::rng::DeterministicRng;
use crate::wheel::TimerWheel;

/// A message payload as it travels through the simulator.
///
/// Payloads are reference-counted byte slices: a send, a duplicated
/// delivery, and a handler re-forwarding the bytes it received all share
/// one allocation. [`Context::send`] accepts anything `Into<Payload>`, so
/// call sites keep passing `Vec<u8>` (one conversion at the edge) or an
/// existing `Payload` (free).
pub type Payload = Arc<[u8]>;

/// Identifier a process chooses for one of its timers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TimerId(pub u64);

impl fmt::Display for TimerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "timer-{}", self.0)
    }
}

/// Behaviour attached to a node of the simulated network.
///
/// All handlers execute in zero simulated time; the passage of time comes
/// from link latencies and timers. Handlers interact with the world only
/// through the [`Context`], which keeps the simulation deterministic.
///
/// `Send` is a supertrait because the sharded engine runs each shard's
/// processes on its own scoped thread; a process never migrates between
/// shards mid-run, but it must be movable to the thread that owns it.
pub trait Process: Send {
    /// Called once, at time zero, before any message flows.
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        let _ = ctx;
    }

    /// Called when a message addressed to this node arrives.
    fn on_message(&mut self, ctx: &mut Context<'_>, from: PartId, payload: Payload);

    /// Called when a timer set via [`Context::set_timer`] fires (and was not
    /// cancelled or superseded).
    fn on_timer(&mut self, ctx: &mut Context<'_>, timer: TimerId) {
        let _ = (ctx, timer);
    }
}

/// What a handler asked the simulator to do.
///
/// Sends and timers carry the dispatching handler's [`TraceCtx`]
/// *side-band*: the causal context rides on the simulator event, never
/// inside the wire payload, so codec output is byte-for-byte unchanged
/// whether tracing is on or off.
#[derive(Debug)]
pub(crate) enum Action {
    Send {
        to: PartId,
        payload: Payload,
        ctx: Option<TraceCtx>,
        /// True when this is a retransmission of an earlier frame; the
        /// transit span is then recorded as `net.retransmit`.
        retransmit: bool,
    },
    SetTimer {
        delay: Duration,
        id: TimerId,
        ctx: Option<TraceCtx>,
    },
    CancelTimer {
        id: TimerId,
    },
}

/// Per-node trace-id mint and open-request registry, owned by the
/// engine (one per node, persistent across run slices). Ids derive from
/// `(node, per-node sequence)` only, and a node's dispatch order is
/// shard-invariant, so every `--shards` value mints identical ids.
#[derive(Debug, Default)]
pub(crate) struct NodeTracer {
    next_seq: u64,
    /// The `(trace_id, root_span_id)` of this node's open request, if
    /// any. One per node: a user part issues at most one primitive at a
    /// time (request → granted → free), so a newly issued primitive
    /// replaces whatever was left open.
    open: Option<(u64, u64)>,
}

impl NodeTracer {
    pub(crate) fn mint(&mut self, node: PartId) -> u64 {
        self.next_seq += 1;
        svckit_obs::trace::mint_id(node.raw(), self.next_seq)
    }
}

/// Where a handler's recorded primitives go: straight into the merged
/// trace (single engine) or into the shard's local spool, merged
/// deterministically after the run (sharded engine).
#[derive(Debug)]
pub(crate) enum TraceDest<'a> {
    Single(&'a mut TraceBuf),
    Shard(&'a mut crate::shard::ShardTrace),
}

impl TraceDest<'_> {
    fn push(&mut self, event: PrimitiveEvent) {
        match self {
            TraceDest::Single(buf) => buf.push(event),
            TraceDest::Shard(spool) => spool.push(event),
        }
    }
}

/// The capabilities handed to a [`Process`] handler.
#[derive(Debug)]
pub struct Context<'a> {
    pub(crate) now: Instant,
    pub(crate) id: PartId,
    pub(crate) actions: &'a mut Vec<Action>,
    pub(crate) rng: &'a mut DeterministicRng,
    pub(crate) trace: TraceDest<'a>,
    /// The causal context of the event being dispatched (side-band from
    /// the delivering message or firing timer); inherited by every send
    /// and timer this handler issues.
    pub(crate) cur_trace: Option<TraceCtx>,
    /// This node's trace-id mint and open-request slot.
    pub(crate) tracer: &'a mut NodeTracer,
}

impl Context<'_> {
    /// The current simulated time.
    pub fn now(&self) -> Instant {
        self.now
    }

    /// This process's node identity.
    pub fn id(&self) -> PartId {
        self.id
    }

    /// Sends `payload` to node `to` over the configured link.
    ///
    /// Accepts a `Vec<u8>`, a boxed or borrowed byte slice, or an existing
    /// [`Payload`]; re-sending a received payload is a reference-count bump,
    /// not a copy.
    pub fn send(&mut self, to: PartId, payload: impl Into<Payload>) {
        self.actions.push(Action::Send {
            to,
            payload: payload.into(),
            ctx: self.cur_trace,
            retransmit: false,
        });
    }

    /// Sends `payload` under an explicit causal context instead of the
    /// dispatch-inherited one. Reliability layers use this to resend
    /// buffered frames under the context of the *original* send (and
    /// flag the transit as a retransmission), and to drain backlog
    /// frames whose context was captured when the application sent
    /// them, not when the ACK that freed the window arrived.
    pub fn send_with_ctx(
        &mut self,
        to: PartId,
        payload: impl Into<Payload>,
        ctx: Option<TraceCtx>,
        retransmit: bool,
    ) {
        self.actions.push(Action::Send {
            to,
            payload: payload.into(),
            ctx,
            retransmit,
        });
    }

    /// Schedules (or reschedules) timer `id` to fire after `delay`.
    /// Re-setting a pending timer supersedes the earlier schedule.
    ///
    /// The timer captures the current causal context (demoted to the
    /// trace root — by the time it fires, the span that delivered this
    /// dispatch has long closed), so timer-driven continuations such as
    /// retransmissions and polls stay on their request's trace.
    pub fn set_timer(&mut self, delay: Duration, id: TimerId) {
        self.actions.push(Action::SetTimer {
            delay,
            id,
            ctx: self.cur_trace.map(TraceCtx::timer_carry),
        });
    }

    /// Cancels a pending timer. Cancelling a timer that is not pending is a
    /// no-op.
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.actions.push(Action::CancelTimer { id });
    }

    /// Records the occurrence of a service primitive at `sap`, timestamped
    /// now. The merged trace is returned in the [`SimReport`].
    pub fn record_primitive(&mut self, sap: Sap, primitive: impl Into<String>, args: Vec<Value>) {
        self.trace
            .push(PrimitiveEvent::new(self.now, sap, primitive, args));
    }

    /// Opens a causal trace rooted at this node: mints a fresh
    /// `(trace_id, root_span)` pair, registers it as the node's open
    /// request, and makes it the current context — every send and timer
    /// issued from here on (on this node and, transitively, on every
    /// node the request's messages reach) carries it. Call when a user
    /// part *issues* a service primitive. No-op when obs sites are
    /// compiled out.
    pub fn trace_begin(&mut self) {
        if !svckit_obs::sites_enabled() {
            return;
        }
        let trace_id = self.tracer.mint(self.id);
        let root = self.tracer.mint(self.id);
        self.tracer.open = Some((trace_id, root));
        self.cur_trace = Some(TraceCtx::root(trace_id, root));
        svckit_obs::ctx::event_traced(
            svckit_obs::trace::TRACE_BEGIN,
            "trace",
            self.id.raw(),
            0,
            self.now.as_micros(),
            0,
            trace_id,
            root,
            0,
        );
    }

    /// Completes this node's open trace, if any: stamps the end marker
    /// that closes the root span. Call when the terminating indication
    /// is delivered *to* the user part. The completing dispatch may run
    /// under a different trace's context (another user's `free` chain
    /// caused the grant); the end marker belongs to the node's own open
    /// request regardless. Clears the current context, so work issued
    /// after completion starts untraced. No-op when obs sites are
    /// compiled out.
    pub fn trace_end(&mut self) {
        if !svckit_obs::sites_enabled() {
            return;
        }
        if let Some((trace_id, root)) = self.tracer.open.take() {
            svckit_obs::ctx::event_traced(
                svckit_obs::trace::TRACE_END,
                "trace",
                self.id.raw(),
                0,
                self.now.as_micros(),
                0,
                trace_id,
                root,
                0,
            );
        }
        self.cur_trace = None;
    }

    /// The causal context of the event being dispatched, if traced.
    pub fn trace_ctx(&self) -> Option<TraceCtx> {
        self.cur_trace
    }

    /// Deterministic random 64-bit value (drawn from the simulator's seeded
    /// stream).
    pub fn rand_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// Deterministic random value in `[0, bound)`.
    pub fn rand_below(&mut self, bound: u64) -> u64 {
        self.rng.next_below(bound)
    }
}

/// Copy-on-write accumulator for the merged service-primitive trace.
///
/// The simulator appends through [`Arc::make_mut`]; each [`SimReport`]
/// shares the `Arc` instead of cloning the whole trace. Handlers record
/// primitives at the simulator's nondecreasing clock, so insertion order is
/// already time order — the watermark tracks that, and the sort in
/// [`TraceBuf::snapshot`] only runs in the (never expected) out-of-order
/// case.
#[derive(Debug)]
pub(crate) struct TraceBuf {
    trace: Arc<Trace>,
    high_water: Instant,
    sorted: bool,
}

impl TraceBuf {
    pub(crate) fn new() -> Self {
        TraceBuf {
            trace: Arc::new(Trace::new()),
            high_water: Instant::ZERO,
            sorted: true,
        }
    }

    pub(crate) fn push(&mut self, event: PrimitiveEvent) {
        if event.time() < self.high_water {
            self.sorted = false;
        } else {
            self.high_water = event.time();
        }
        Arc::make_mut(&mut self.trace).push(event);
    }

    /// A time-sorted shared snapshot. The copy-on-write clone inside
    /// `make_mut` only happens on the first append *after* a snapshot was
    /// taken, and only if that snapshot is still alive.
    pub(crate) fn snapshot(&mut self) -> Arc<Trace> {
        if !self.sorted {
            Arc::make_mut(&mut self.trace).sort_by_time();
            self.sorted = true;
        }
        Arc::clone(&self.trace)
    }
}

/// Which data structure backs the simulator's event queue.
///
/// Both backends produce byte-identical event streams — the same `(at,
/// seq)` total order, the same tie-breaks, the same stale-timer drops —
/// as enforced by the oracle suite in `tests/wheel_oracle.rs`. The wheel
/// is the default because its push/pop are amortized `O(1)`; the heap is
/// kept as the obviously-correct reference for differential testing and
/// benchmarking.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum QueueBackend {
    /// Hierarchical timer wheel (`O(1)` amortized push/pop). The default.
    #[default]
    Wheel,
    /// `BinaryHeap` reference implementation (`O(log n)` push/pop).
    Heap,
}

impl fmt::Display for QueueBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueueBackend::Wheel => write!(f, "wheel"),
            QueueBackend::Heap => write!(f, "heap"),
        }
    }
}

impl FromStr for QueueBackend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "wheel" => Ok(QueueBackend::Wheel),
            "heap" => Ok(QueueBackend::Heap),
            other => Err(format!("unknown queue backend {other:?} (wheel|heap)")),
        }
    }
}

/// Configuration of a [`Simulator`].
#[derive(Debug, Clone)]
pub struct SimConfig {
    seed: u64,
    pub(crate) default_link: LinkConfig,
    queue: QueueBackend,
    shards: u32,
}

impl SimConfig {
    /// Creates a configuration with the given PRNG seed and the default
    /// (LAN-like) link everywhere.
    pub fn new(seed: u64) -> Self {
        SimConfig {
            seed,
            default_link: LinkConfig::default(),
            queue: QueueBackend::default(),
            shards: 1,
        }
    }

    /// Sets the link used for node pairs without an explicit
    /// [`Simulator::set_link`] entry (builder-style).
    #[must_use]
    pub fn default_link(mut self, link: LinkConfig) -> Self {
        self.default_link = link;
        self
    }

    /// Selects the event-queue backend (builder-style). Both backends are
    /// observably identical; see [`QueueBackend`].
    #[must_use]
    pub fn queue_backend(mut self, backend: QueueBackend) -> Self {
        self.queue = backend;
        self
    }

    /// Partitions the nodes over `shards` conservative-lookahead shards
    /// (builder-style). `0` and `1` both select the single-threaded
    /// engine; see [`crate::shard`] for the parallel one and for the
    /// determinism guarantees across shard counts.
    #[must_use]
    pub fn shards(mut self, shards: u32) -> Self {
        self.shards = shards;
        self
    }

    /// The PRNG seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The selected event-queue backend.
    pub fn queue(&self) -> QueueBackend {
        self.queue
    }

    /// The configured shard count (at least 1).
    pub fn shard_count(&self) -> u32 {
        self.shards.max(1)
    }
}

/// Errors from simulator assembly or execution.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// Two processes were registered under the same node id.
    DuplicateNode(PartId),
    /// A run was requested with no registered processes.
    NoProcesses,
    /// The sharded engine needs a positive minimum link latency to bound
    /// its lookahead window; a zero-latency link would force zero-width
    /// windows and the shards could never advance.
    ZeroLookahead,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::DuplicateNode(id) => write!(f, "node {id} registered twice"),
            SimError::NoProcesses => write!(f, "simulator has no processes"),
            SimError::ZeroLookahead => write!(
                f,
                "sharded simulation requires every link latency to be positive \
                 (the minimum latency is the conservative lookahead window)"
            ),
        }
    }
}

impl Error for SimError {}

/// Outcome of a simulation run.
#[derive(Debug, Clone)]
pub struct SimReport {
    end_time: Instant,
    quiescent: bool,
    metrics: NetMetrics,
    trace: Arc<Trace>,
}

impl SimReport {
    /// Simulated time when the run stopped.
    pub fn end_time(&self) -> Instant {
        self.end_time
    }

    /// Whether the event queue drained before the time limit.
    pub fn is_quiescent(&self) -> bool {
        self.quiescent
    }

    /// Network counters.
    pub fn metrics(&self) -> &NetMetrics {
        &self.metrics
    }

    /// The merged, time-ordered service-primitive trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    pub(crate) fn assemble(
        end_time: Instant,
        quiescent: bool,
        metrics: NetMetrics,
        trace: Arc<Trace>,
    ) -> Self {
        SimReport {
            end_time,
            quiescent,
            metrics,
            trace,
        }
    }
}

#[derive(Debug)]
pub(crate) enum EventKind {
    Deliver {
        to: PartId,
        from: PartId,
        payload: Payload,
        /// Causal context riding side-band on the delivery (never in the
        /// payload bytes). `span_id` is the transit span that carried it.
        ctx: Option<TraceCtx>,
    },
    Timer {
        node: PartId,
        id: TimerId,
        generation: u64,
        /// Causal context captured when the timer was set, demoted to the
        /// trace root (see [`Context::set_timer`]).
        ctx: Option<TraceCtx>,
    },
}

impl EventKind {
    /// The node this event will be dispatched on.
    pub(crate) fn target(&self) -> PartId {
        match self {
            EventKind::Deliver { to, .. } => *to,
            EventKind::Timer { node, .. } => *node,
        }
    }
}

/// Total-order tie-break for events sharing a firing instant: the
/// *provenance key* `(sched_at, scheduling node, per-node count)` packed
/// into a `u128`.
///
/// The key is a pure function of local scheduling history — when it was
/// scheduled, by whom, and how many events that node had scheduled before
/// — so it is identical no matter how nodes are partitioned into shards.
/// Because the simulation clock is nondecreasing, provenance order also
/// matches the old global-sequence order whenever same-instant events
/// were scheduled at different times; within one handler invocation the
/// per-node count preserves action order exactly.
pub(crate) fn node_seed(seed: u64, id: PartId) -> u64 {
    seed.wrapping_add(id.raw().wrapping_mul(0x9E37_79B9_7F4A_7C15)) ^ 0x5851_F42D_4C95_7F2D
}

pub(crate) fn provenance_key(sched_at: Instant, node: PartId, count: u64) -> u128 {
    debug_assert!(node.raw() < (1 << 32), "node id {node} exceeds 32 bits");
    debug_assert!(count < (1 << 32), "per-node schedule count overflow");
    ((sched_at.as_micros() as u128) << 64)
        | (((node.raw() & 0xFFFF_FFFF) as u128) << 32)
        | ((count & 0xFFFF_FFFF) as u128)
}

#[derive(Debug)]
pub(crate) struct Scheduled {
    pub(crate) at: Instant,
    pub(crate) key: u128,
    pub(crate) kind: EventKind,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.key == other.key
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.key).cmp(&(other.at, other.key))
    }
}

/// The simulator's event queue, behind the backend selected in
/// [`SimConfig`]. Both variants pop events in ascending `(at, key)`
/// order; dispatching through a two-way enum costs one predictable
/// branch and avoids a generic parameter leaking into [`Simulator`].
#[derive(Debug)]
pub(crate) enum EventQueue {
    Wheel(TimerWheel),
    Heap(BinaryHeap<Reverse<Scheduled>>),
}

impl EventQueue {
    pub(crate) fn new(backend: QueueBackend) -> Self {
        match backend {
            QueueBackend::Wheel => EventQueue::Wheel(TimerWheel::new()),
            QueueBackend::Heap => EventQueue::Heap(BinaryHeap::new()),
        }
    }

    pub(crate) fn push(&mut self, event: Scheduled) {
        match self {
            EventQueue::Wheel(wheel) => wheel.push(event),
            EventQueue::Heap(heap) => heap.push(Reverse(event)),
        }
    }

    pub(crate) fn pop(&mut self) -> Option<Scheduled> {
        match self {
            EventQueue::Wheel(wheel) => wheel.pop(),
            EventQueue::Heap(heap) => heap.pop().map(|Reverse(event)| event),
        }
    }

    /// Pops a *run*: the maximal prefix of consecutive events that share
    /// one firing instant and one target node, appended to `out`. Batch
    /// dispatch amortizes queue bookkeeping over the run without changing
    /// the pop order — the events come out exactly as repeated [`pop`]
    /// would hand them out.
    ///
    /// [`pop`]: EventQueue::pop
    pub(crate) fn pop_run(&mut self, out: &mut Vec<Scheduled>) {
        let Some(first) = self.pop() else { return };
        let at = first.at;
        let target = first.kind.target();
        out.push(first);
        loop {
            let matches = match self.peek() {
                Some(next) => next.at == at && next.kind.target() == target,
                None => false,
            };
            if !matches {
                break;
            }
            out.push(self.pop().expect("peeked event exists"));
        }
    }

    fn peek(&mut self) -> Option<&Scheduled> {
        match self {
            EventQueue::Wheel(wheel) => wheel.peek(),
            EventQueue::Heap(heap) => heap.peek().map(|Reverse(event)| event),
        }
    }

    /// Firing instant of the earliest pending event, if any.
    pub(crate) fn next_at(&mut self) -> Option<Instant> {
        self.peek().map(|e| e.at)
    }

    pub(crate) fn len(&self) -> usize {
        match self {
            EventQueue::Wheel(wheel) => wheel.len(),
            EventQueue::Heap(heap) => heap.len(),
        }
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The per-pair link configuration of a simulated network: explicit
/// directed links over a default, plus the saved pre-partition state
/// that [`LinkTable::heal`] restores. Shared verbatim by the single and
/// the sharded engine so fault semantics cannot drift between them.
#[derive(Debug)]
pub(crate) struct LinkTable {
    pub(crate) default: LinkConfig,
    links: FastMap<(PartId, PartId), LinkConfig>,
    /// Pre-partition link configs, restored on heal (`None` = was default).
    healed: FastMap<(PartId, PartId), Option<LinkConfig>>,
}

impl LinkTable {
    pub(crate) fn new(default: LinkConfig) -> Self {
        LinkTable {
            default,
            links: FastMap::default(),
            healed: FastMap::default(),
        }
    }

    pub(crate) fn set(&mut self, from: PartId, to: PartId, link: LinkConfig) {
        self.links.insert((from, to), link);
    }

    pub(crate) fn set_symmetric(&mut self, a: PartId, b: PartId, link: LinkConfig) {
        self.links.insert((a, b), link.clone());
        self.links.insert((b, a), link);
    }

    pub(crate) fn link_for(&self, from: PartId, to: PartId) -> &LinkConfig {
        // Common case in benchmarks and simple topologies: no per-pair
        // overrides at all, so skip the hash entirely.
        if self.links.is_empty() {
            return &self.default;
        }
        self.links.get(&(from, to)).unwrap_or(&self.default)
    }

    /// See [`Simulator::partition`].
    pub(crate) fn partition(&mut self, a: PartId, b: PartId) {
        for (from, to) in [(a, b), (b, a)] {
            if self.healed.contains_key(&(from, to)) {
                continue;
            }
            let base = self.link_for(from, to).clone();
            self.healed
                .insert((from, to), self.links.get(&(from, to)).cloned());
            self.links.insert((from, to), base.with_loss(1.0));
        }
    }

    /// See [`Simulator::heal`].
    pub(crate) fn heal(&mut self, a: PartId, b: PartId) {
        for (from, to) in [(a, b), (b, a)] {
            if let Some(previous) = self.healed.remove(&(from, to)) {
                match previous {
                    Some(link) => {
                        self.links.insert((from, to), link);
                    }
                    None => {
                        self.links.remove(&(from, to));
                    }
                }
            }
        }
    }

    /// The smallest latency any message can currently experience: the
    /// minimum over the default link and every explicit link. This bounds
    /// the conservative lookahead window of the sharded engine — any
    /// cross-shard send departs at least this far before it can arrive.
    pub(crate) fn min_latency(&self) -> Duration {
        self.links
            .values()
            .map(LinkConfig::latency)
            .fold(self.default.latency(), Duration::min)
    }
}

/// The single-threaded simulation engine: one clock, one event queue,
/// every node. This is the exact historical code path — [`Simulator`]
/// routes to it whenever `shards <= 1` — and the reference the sharded
/// engine is proven against.
pub(crate) struct SingleSim {
    config: SimConfig,
    clock: Instant,
    started: bool,
    procs: BTreeMap<PartId, Box<dyn Process>>,
    links: LinkTable,
    // The per-event maps below use the deterministic `FastMap` hasher;
    // none of them is ever iterated, so the hash function affects lookup
    // cost only, never observable order.
    last_arrival: FastMap<(PartId, PartId), Instant>,
    /// For bandwidth-limited links: when the sender-side of each directed
    /// pair becomes free again.
    link_busy_until: FastMap<(PartId, PartId), Instant>,
    queue: EventQueue,
    rng: DeterministicRng,
    node_rngs: FastMap<PartId, DeterministicRng>,
    /// Per-node counts of scheduled events, feeding [`provenance_key`].
    sched_counts: FastMap<PartId, u64>,
    /// Per-node timer generations, nested so one node's huge timer table
    /// (e.g. a standing backlog of lease expiries) cannot dilute the cache
    /// locality of another node's hot few timers.
    timer_generation: FastMap<PartId, FastMap<TimerId, u64>>,
    /// Per-node trace-id mints and open-request slots (see [`NodeTracer`]).
    tracers: FastMap<PartId, NodeTracer>,
    metrics: NetMetrics,
    trace: TraceBuf,
    /// Reused across dispatches so the hot path does not allocate a fresh
    /// action vector per event.
    action_buf: Vec<Action>,
    /// Reused batch buffer for [`EventQueue::pop_run`].
    run_buf: Vec<Scheduled>,
    events_processed: u64,
    peak_queue_len: usize,
}

impl SingleSim {
    pub(crate) fn new(config: SimConfig) -> Self {
        let rng = DeterministicRng::new(config.seed());
        let queue = EventQueue::new(config.queue());
        let links = LinkTable::new(config.default_link.clone());
        SingleSim {
            config,
            clock: Instant::ZERO,
            started: false,
            procs: BTreeMap::new(),
            links,
            last_arrival: FastMap::default(),
            link_busy_until: FastMap::default(),
            queue,
            rng,
            node_rngs: FastMap::default(),
            sched_counts: FastMap::default(),
            timer_generation: FastMap::default(),
            tracers: FastMap::default(),
            metrics: NetMetrics::new(),
            trace: TraceBuf::new(),
            action_buf: Vec::new(),
            run_buf: Vec::new(),
            events_processed: 0,
            peak_queue_len: 0,
        }
    }

    pub(crate) fn add_process(
        &mut self,
        id: PartId,
        process: Box<dyn Process>,
    ) -> Result<(), SimError> {
        if self.procs.contains_key(&id) {
            return Err(SimError::DuplicateNode(id));
        }
        // Each node gets its own random stream, derived from the seed and
        // the node id only. Application-level draws (workload choices) are
        // therefore independent of network-level draws (jitter, loss) and
        // of other nodes — the same workload unfolds identically over any
        // protocol or platform.
        self.node_rngs
            .insert(id, DeterministicRng::new(node_seed(self.config.seed(), id)));
        self.procs.insert(id, process);
        Ok(())
    }

    pub(crate) fn now(&self) -> Instant {
        self.clock
    }

    fn schedule(&mut self, origin: PartId, at: Instant, kind: EventKind) {
        let count = self.sched_counts.entry(origin).or_insert(0);
        *count += 1;
        let key = provenance_key(self.clock, origin, *count);
        self.queue.push(Scheduled { at, key, kind });
    }

    fn apply_actions(&mut self, node: PartId, actions: &mut Vec<Action>) {
        for action in actions.drain(..) {
            match action {
                Action::Send {
                    to,
                    payload,
                    ctx,
                    retransmit,
                } => {
                    self.metrics.record_send(node, payload.len());
                    svckit_obs::obs_count!("net.sends");
                    if !self.procs.contains_key(&to) {
                        self.metrics.record_undeliverable();
                        svckit_obs::obs_count!("net.undeliverable");
                        continue;
                    }
                    // Copy the link's scalar parameters out instead of
                    // cloning the whole `LinkConfig` per send.
                    let link = self.links.link_for(node, to);
                    let loss = link.loss();
                    let duplicate_p = link.duplicate();
                    let latency = link.latency();
                    let jitter_bound = link.jitter().as_micros() + 1;
                    let ordered = link.is_ordered();
                    let transmission = link.transmission_time(payload.len());
                    if self.rng.coin(loss) {
                        self.metrics.record_drop();
                        svckit_obs::obs_count!("net.drops");
                        match ctx {
                            // Parent at the trace root, not the carried
                            // span: a retransmitted frame keeps its
                            // originating send's context, whose delivery
                            // span closed long before the resend.
                            Some(t) => svckit_obs::obs_event!(
                                "net.drop",
                                "net",
                                to.raw(),
                                self.clock.as_micros(),
                                t.trace_id,
                                0u64,
                                t.parent_id
                            ),
                            None => svckit_obs::obs_event!(
                                "net.drop",
                                "net",
                                to.raw(),
                                self.clock.as_micros()
                            ),
                        }
                        continue;
                    }
                    let duplicate = self.rng.coin(duplicate_p);
                    let copies = if duplicate { 2 } else { 1 };
                    if duplicate {
                        self.metrics.record_duplicate();
                        svckit_obs::obs_count!("net.duplicates");
                    }
                    // Serialization: a bandwidth-limited link is occupied
                    // for the message's transmission time; back-to-back
                    // sends queue behind it.
                    let mut depart = self.clock;
                    if transmission > Duration::ZERO {
                        let busy = self
                            .link_busy_until
                            .entry((node, to))
                            .or_insert(Instant::ZERO);
                        if depart < *busy {
                            depart = *busy;
                        }
                        depart += transmission;
                        *busy = depart;
                    }
                    // Time spent queued behind the link (serialization /
                    // bandwidth backlog) is its own attributable segment.
                    if let Some(t) = ctx {
                        if depart > self.clock {
                            let qid = self.tracers.entry(node).or_default().mint(node);
                            svckit_obs::obs_span!(
                                svckit_obs::trace::SPAN_QUEUE_WAIT,
                                "net",
                                node.raw(),
                                0u64,
                                self.clock.as_micros(),
                                depart.as_micros(),
                                t.trace_id,
                                qid,
                                t.parent_id
                            );
                        }
                    }
                    let payload_len = payload.len();
                    let mut payload = Some(payload);
                    for copy in 0..copies {
                        let jitter = Duration::from_micros(self.rng.next_below(jitter_bound));
                        let mut at = depart + latency + jitter;
                        if ordered {
                            let last = self.last_arrival.entry((node, to)).or_insert(Instant::ZERO);
                            if at < *last {
                                at = *last;
                            }
                            *last = at;
                        }
                        // Transit = serialization queueing + transmission +
                        // propagation + jitter, all in virtual time.
                        svckit_obs::obs_link!(
                            node.raw(),
                            to.raw(),
                            payload_len,
                            at.saturating_since(self.clock).as_micros()
                        );
                        let deliver_ctx = match ctx {
                            Some(t) => {
                                // Each copy gets its own transit span, so
                                // duplicated deliveries stay distinguishable
                                // in the flame graph.
                                let sid = self.tracers.entry(node).or_default().mint(node);
                                let span_name = if retransmit {
                                    svckit_obs::trace::SPAN_RETRANSMIT
                                } else {
                                    svckit_obs::trace::SPAN_TRANSIT
                                };
                                svckit_obs::obs_span!(
                                    span_name,
                                    "net",
                                    to.raw(),
                                    node.raw(),
                                    depart.as_micros(),
                                    at.as_micros(),
                                    t.trace_id,
                                    sid,
                                    t.parent_id
                                );
                                Some(t.hop(sid))
                            }
                            None => {
                                svckit_obs::obs_span!(
                                    "net.transit",
                                    "net",
                                    to.raw(),
                                    self.clock.as_micros(),
                                    at.as_micros()
                                );
                                None
                            }
                        };
                        // The last copy takes ownership: un-duplicated sends
                        // (the overwhelmingly common case) never touch the
                        // payload's reference count at all.
                        let payload = if copy + 1 == copies {
                            payload.take().expect("one payload per copy loop")
                        } else {
                            Payload::clone(payload.as_ref().expect("clone before the last copy"))
                        };
                        self.schedule(
                            node,
                            at,
                            EventKind::Deliver {
                                to,
                                from: node,
                                payload,
                                ctx: deliver_ctx,
                            },
                        );
                    }
                }
                Action::SetTimer { delay, id, ctx } => {
                    let generation = self
                        .timer_generation
                        .entry(node)
                        .or_default()
                        .entry(id)
                        .and_modify(|g| *g += 1)
                        .or_insert(1);
                    let generation = *generation;
                    self.schedule(
                        node,
                        self.clock + delay,
                        EventKind::Timer {
                            node,
                            id,
                            generation,
                            ctx,
                        },
                    );
                }
                Action::CancelTimer { id } => {
                    // Bumping the generation invalidates any pending firing.
                    self.timer_generation
                        .entry(node)
                        .or_default()
                        .entry(id)
                        .and_modify(|g| *g += 1)
                        .or_insert(1);
                }
            }
        }
    }

    fn dispatch<F>(&mut self, node: PartId, trace_ctx: Option<TraceCtx>, call: F)
    where
        F: FnOnce(&mut dyn Process, &mut Context<'_>),
    {
        let mut actions = std::mem::take(&mut self.action_buf);
        if let Some(process) = self.procs.get_mut(&node) {
            let rng = self
                .node_rngs
                .get_mut(&node)
                .expect("node rng created with the process");
            let mut ctx = Context {
                now: self.clock,
                id: node,
                actions: &mut actions,
                rng,
                trace: TraceDest::Single(&mut self.trace),
                cur_trace: trace_ctx,
                tracer: self.tracers.entry(node).or_default(),
            };
            call(process.as_mut(), &mut ctx);
        }
        self.apply_actions(node, &mut actions);
        // Hand the (now empty) buffer back for the next dispatch, keeping
        // its capacity.
        self.action_buf = actions;
    }

    fn start_if_needed(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        let ids: Vec<PartId> = self.procs.keys().copied().collect();
        for id in ids {
            self.dispatch(id, None, |p, ctx| p.on_start(ctx));
        }
    }

    /// Dispatches one popped event. The queue-depth sample is taken by the
    /// caller once per batch; everything else here is per event.
    fn dispatch_event(&mut self, event: Scheduled) {
        debug_assert!(event.at >= self.clock, "time went backwards");
        self.clock = event.at;
        self.events_processed += 1;
        svckit_obs::obs_count!("net.events");
        match event.kind {
            EventKind::Deliver {
                to,
                from,
                payload,
                ctx,
            } => {
                self.metrics.record_delivery(payload.len());
                svckit_obs::obs_count!("net.deliveries");
                svckit_obs::obs_count!("net.delivered_bytes", payload.len());
                self.dispatch(to, ctx, |p, ctx| p.on_message(ctx, from, payload));
            }
            EventKind::Timer {
                node,
                id,
                generation,
                ctx,
            } => {
                let live = self
                    .timer_generation
                    .get(&node)
                    .and_then(|timers| timers.get(&id));
                if live == Some(&generation) {
                    svckit_obs::obs_count!("net.timer_fires");
                    self.dispatch(node, ctx, |p, ctx| p.on_timer(ctx, id));
                } else {
                    svckit_obs::obs_count!("net.timer_stale");
                }
            }
        }
    }

    pub(crate) fn run_to_quiescence(
        &mut self,
        max_elapsed: Duration,
    ) -> Result<SimReport, SimError> {
        if self.procs.is_empty() {
            return Err(SimError::NoProcesses);
        }
        let deadline = self.clock + max_elapsed;
        self.start_if_needed();
        let mut quiescent = true;
        let mut run = std::mem::take(&mut self.run_buf);
        loop {
            // Batch dispatch: pull the whole same-instant, same-target run
            // in one queue operation and pay the bookkeeping (depth
            // sample, watermark) once. The events still dispatch one by
            // one, in exactly the order repeated pops would yield, because
            // an event's actions may cancel or re-arm timers later in the
            // same batch.
            self.queue.pop_run(&mut run);
            if run.is_empty() {
                break;
            }
            self.peak_queue_len = self.peak_queue_len.max(self.queue.len() + run.len());
            if run[0].at > deadline {
                // The whole run shares one firing instant, so it goes back
                // wholesale.
                for event in run.drain(..) {
                    self.queue.push(event);
                }
                quiescent = false;
                break;
            }
            svckit_obs::obs_record!("net.queue_depth", self.queue.len());
            for event in run.drain(..) {
                self.dispatch_event(event);
            }
        }
        run.clear();
        self.run_buf = run;
        if quiescent {
            // No pending events: clock stays at the last event time.
        } else {
            self.clock = deadline;
        }
        Ok(SimReport {
            end_time: self.clock,
            quiescent,
            metrics: self.metrics.clone(),
            trace: self.trace.snapshot(),
        })
    }

    pub(crate) fn events_processed(&self) -> u64 {
        self.events_processed
    }

    pub(crate) fn peak_queue_len(&self) -> usize {
        self.peak_queue_len
    }
}

/// A deterministic discrete-event network simulator.
///
/// Routes to one of two engines chosen by [`SimConfig::shards`]: the
/// single-threaded engine (`shards <= 1`, the exact historical code
/// path), or the conservative-lookahead sharded engine (`shards >= 2`,
/// one scoped thread per shard — see [`crate::shard`] for the
/// synchronization protocol and the determinism guarantees).
///
/// See the [crate-level documentation](crate) for an end-to-end example.
pub struct Simulator {
    inner: EngineImpl,
}

enum EngineImpl {
    Single(Box<SingleSim>),
    Sharded(Box<crate::shard::ShardedSim>),
}

impl fmt::Debug for Simulator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = f.debug_struct("Simulator");
        match &self.inner {
            EngineImpl::Single(sim) => s
                .field("clock", &sim.clock)
                .field("processes", &sim.procs.len())
                .field("queued_events", &sim.queue.len()),
            EngineImpl::Sharded(sim) => s
                .field("clock", &sim.now())
                .field("processes", &sim.process_count())
                .field("shards", &sim.shard_count()),
        }
        .finish_non_exhaustive()
    }
}

impl Simulator {
    /// Creates a simulator from a configuration.
    pub fn new(config: SimConfig) -> Self {
        let inner = if config.shard_count() <= 1 {
            EngineImpl::Single(Box::new(SingleSim::new(config)))
        } else {
            EngineImpl::Sharded(Box::new(crate::shard::ShardedSim::new(config)))
        };
        Simulator { inner }
    }

    /// Registers a process at node `id`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::DuplicateNode`] when `id` is already taken.
    pub fn add_process(&mut self, id: PartId, process: Box<dyn Process>) -> Result<(), SimError> {
        match &mut self.inner {
            EngineImpl::Single(sim) => sim.add_process(id, process),
            EngineImpl::Sharded(sim) => sim.add_process(id, process),
        }
    }

    /// Configures the directed link `from → to`.
    pub fn set_link(&mut self, from: PartId, to: PartId, link: LinkConfig) {
        match &mut self.inner {
            EngineImpl::Single(sim) => sim.links.set(from, to, link),
            EngineImpl::Sharded(sim) => sim.links_mut().set(from, to, link),
        }
    }

    /// Configures both directions between `a` and `b`.
    pub fn set_link_symmetric(&mut self, a: PartId, b: PartId, link: LinkConfig) {
        match &mut self.inner {
            EngineImpl::Single(sim) => sim.links.set_symmetric(a, b, link),
            EngineImpl::Sharded(sim) => sim.links_mut().set_symmetric(a, b, link),
        }
    }

    /// Partitions `a` from `b`: every message between them (both
    /// directions) is dropped until [`Simulator::heal`] is called.
    /// Messages already in flight still arrive. Call between
    /// [`Simulator::run_to_quiescence`] slices to inject failures mid-run.
    /// Partitioning an already-partitioned pair is a no-op, so the saved
    /// pre-partition configuration survives repeated calls.
    pub fn partition(&mut self, a: PartId, b: PartId) {
        match &mut self.inner {
            EngineImpl::Single(sim) => sim.links.partition(a, b),
            EngineImpl::Sharded(sim) => sim.links_mut().partition(a, b),
        }
    }

    /// Heals a partition created by [`Simulator::partition`], restoring the
    /// previous link configuration (explicit or default).
    pub fn heal(&mut self, a: PartId, b: PartId) {
        match &mut self.inner {
            EngineImpl::Single(sim) => sim.links.heal(a, b),
            EngineImpl::Sharded(sim) => sim.links_mut().heal(a, b),
        }
    }

    /// The current simulated time.
    pub fn now(&self) -> Instant {
        match &self.inner {
            EngineImpl::Single(sim) => sim.now(),
            EngineImpl::Sharded(sim) => sim.now(),
        }
    }

    /// Runs until the event queue drains or `max_elapsed` simulated time has
    /// passed since the start of this call.
    ///
    /// Can be called repeatedly; the clock, metrics and trace persist across
    /// calls.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NoProcesses`] when no process is registered, and
    /// [`SimError::ZeroLookahead`] when the sharded engine is selected but
    /// some link latency is zero.
    pub fn run_to_quiescence(&mut self, max_elapsed: Duration) -> Result<SimReport, SimError> {
        match &mut self.inner {
            EngineImpl::Single(sim) => sim.run_to_quiescence(max_elapsed),
            EngineImpl::Sharded(sim) => sim.run_to_quiescence(max_elapsed),
        }
    }

    /// Total number of events dispatched so far, across all runs (and all
    /// shards). Engine bookkeeping, deliberately not part of [`SimReport`].
    pub fn events_processed(&self) -> u64 {
        match &self.inner {
            EngineImpl::Single(sim) => sim.events_processed(),
            EngineImpl::Sharded(sim) => sim.events_processed(),
        }
    }

    /// High-water mark of pending events (live timers plus in-flight
    /// messages; summed over shards for the sharded engine).
    pub fn peak_queue_len(&self) -> usize {
        match &self.inner {
            EngineImpl::Single(sim) => sim.peak_queue_len(),
            EngineImpl::Sharded(sim) => sim.peak_queue_len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Sends `count` messages to a peer at start, spaced by timers.
    struct Chatter {
        peer: PartId,
        remaining: u32,
        received: u32,
    }

    impl Process for Chatter {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            if self.remaining > 0 {
                ctx.set_timer(Duration::from_millis(1), TimerId(1));
            }
        }
        fn on_message(&mut self, _ctx: &mut Context<'_>, _from: PartId, _payload: Payload) {
            self.received += 1;
        }
        fn on_timer(&mut self, ctx: &mut Context<'_>, _timer: TimerId) {
            ctx.send(self.peer, vec![0u8; 8]);
            self.remaining -= 1;
            if self.remaining > 0 {
                ctx.set_timer(Duration::from_millis(1), TimerId(1));
            }
        }
    }

    fn two_node_sim(link: LinkConfig, seed: u64, count: u32) -> Simulator {
        let mut sim = Simulator::new(SimConfig::new(seed).default_link(link));
        sim.add_process(
            PartId::new(1),
            Box::new(Chatter {
                peer: PartId::new(2),
                remaining: count,
                received: 0,
            }),
        )
        .unwrap();
        sim.add_process(
            PartId::new(2),
            Box::new(Chatter {
                peer: PartId::new(1),
                remaining: 0,
                received: 0,
            }),
        )
        .unwrap();
        sim
    }

    #[test]
    fn runs_to_quiescence_and_counts_messages() {
        let mut sim = two_node_sim(LinkConfig::lan(), 1, 10);
        let report = sim.run_to_quiescence(Duration::from_secs(10)).unwrap();
        assert!(report.is_quiescent());
        assert_eq!(report.metrics().messages_sent(), 10);
        assert_eq!(report.metrics().messages_delivered(), 10);
        assert!(report.end_time() > Instant::ZERO);
    }

    #[test]
    fn same_seed_same_outcome() {
        let run = |seed| {
            let mut sim = two_node_sim(
                LinkConfig::lossy(Duration::from_millis(1), Duration::from_millis(1), 0.3),
                seed,
                50,
            );
            let r = sim.run_to_quiescence(Duration::from_secs(60)).unwrap();
            (r.end_time(), r.metrics().clone())
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn lossy_link_drops_about_the_right_fraction() {
        let mut sim = two_node_sim(
            LinkConfig::lossy(Duration::from_millis(1), Duration::ZERO, 0.5),
            3,
            2000,
        );
        let report = sim.run_to_quiescence(Duration::from_secs(600)).unwrap();
        let dropped = report.metrics().messages_dropped() as f64;
        assert!((dropped / 2000.0 - 0.5).abs() < 0.05, "dropped {dropped}");
        assert_eq!(
            report.metrics().messages_delivered() + report.metrics().messages_dropped(),
            2000
        );
    }

    #[test]
    fn duplicating_link_delivers_extra_copies() {
        let mut sim = two_node_sim(
            LinkConfig::reliable_datagram(Duration::from_millis(1), Duration::ZERO)
                .with_duplication(1.0),
            3,
            10,
        );
        let report = sim.run_to_quiescence(Duration::from_secs(60)).unwrap();
        assert_eq!(report.metrics().messages_duplicated(), 10);
        assert_eq!(report.metrics().messages_delivered(), 20);
    }

    /// Records arrival order of numbered messages.
    struct Collector {
        seen: Vec<u8>,
    }
    impl Process for Collector {
        fn on_message(&mut self, _ctx: &mut Context<'_>, _from: PartId, payload: Payload) {
            self.seen.push(payload[0]);
        }
    }
    /// Fires a burst of numbered messages at start.
    struct Burst {
        peer: PartId,
        n: u8,
    }
    impl Process for Burst {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            for i in 0..self.n {
                ctx.send(self.peer, vec![i]);
            }
        }
        fn on_message(&mut self, _: &mut Context<'_>, _: PartId, _: Payload) {}
    }

    fn burst_order(link: LinkConfig, seed: u64) -> Vec<u8> {
        // Run the simulation with a collector, then inspect arrival order via
        // the trace of a probe primitive.
        struct RecordingCollector;
        impl Process for RecordingCollector {
            fn on_message(&mut self, ctx: &mut Context<'_>, _from: PartId, payload: Payload) {
                ctx.record_primitive(
                    Sap::new("probe", ctx.id()),
                    "recv",
                    vec![Value::Int(payload[0] as i64)],
                );
            }
        }
        let mut sim = Simulator::new(SimConfig::new(seed).default_link(link));
        sim.add_process(
            PartId::new(1),
            Box::new(Burst {
                peer: PartId::new(2),
                n: 30,
            }),
        )
        .unwrap();
        sim.add_process(PartId::new(2), Box::new(RecordingCollector))
            .unwrap();
        let report = sim.run_to_quiescence(Duration::from_secs(10)).unwrap();
        report
            .trace()
            .events()
            .iter()
            .map(|e| e.args()[0].as_int().unwrap() as u8)
            .collect()
    }

    #[test]
    fn ordered_link_preserves_fifo() {
        let order = burst_order(
            LinkConfig::reliable_stream(Duration::from_millis(1), Duration::from_millis(5)),
            11,
        );
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(order, sorted);
        assert_eq!(order.len(), 30);
    }

    #[test]
    fn unordered_link_can_reorder_under_jitter() {
        let order = burst_order(
            LinkConfig::reliable_datagram(Duration::from_millis(1), Duration::from_millis(5)),
            11,
        );
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_ne!(order, sorted, "expected at least one reordering");
    }

    #[test]
    fn duplicate_node_is_rejected() {
        let mut sim = Simulator::new(SimConfig::new(1));
        sim.add_process(PartId::new(1), Box::new(Collector { seen: vec![] }))
            .unwrap();
        let err = sim
            .add_process(PartId::new(1), Box::new(Collector { seen: vec![] }))
            .unwrap_err();
        assert_eq!(err, SimError::DuplicateNode(PartId::new(1)));
    }

    #[test]
    fn empty_simulator_errors() {
        let mut sim = Simulator::new(SimConfig::new(1));
        assert_eq!(
            sim.run_to_quiescence(Duration::from_secs(1)).unwrap_err(),
            SimError::NoProcesses
        );
    }

    #[test]
    fn undeliverable_messages_are_counted() {
        struct SendsToNowhere;
        impl Process for SendsToNowhere {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                ctx.send(PartId::new(99), b"void".to_vec());
            }
            fn on_message(&mut self, _: &mut Context<'_>, _: PartId, _: Payload) {}
        }
        let mut sim = Simulator::new(SimConfig::new(1));
        sim.add_process(PartId::new(1), Box::new(SendsToNowhere))
            .unwrap();
        let report = sim.run_to_quiescence(Duration::from_secs(1)).unwrap();
        assert_eq!(report.metrics().undeliverable(), 1);
        assert_eq!(report.metrics().messages_delivered(), 0);
    }

    #[test]
    fn cancelled_timer_does_not_fire() {
        struct CancelsItself {
            fired: bool,
        }
        impl Process for CancelsItself {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                ctx.set_timer(Duration::from_millis(5), TimerId(1));
                ctx.cancel_timer(TimerId(1));
                ctx.set_timer(Duration::from_millis(10), TimerId(2));
            }
            fn on_message(&mut self, _: &mut Context<'_>, _: PartId, _: Payload) {}
            fn on_timer(&mut self, _ctx: &mut Context<'_>, timer: TimerId) {
                assert_eq!(timer, TimerId(2), "cancelled timer fired");
                self.fired = true;
            }
        }
        let mut sim = Simulator::new(SimConfig::new(1));
        sim.add_process(PartId::new(1), Box::new(CancelsItself { fired: false }))
            .unwrap();
        let report = sim.run_to_quiescence(Duration::from_secs(1)).unwrap();
        assert!(report.is_quiescent());
        assert_eq!(report.end_time(), Instant::from_micros(10_000));
    }

    #[test]
    fn resetting_timer_supersedes_pending_firing() {
        struct Resetter {
            fires: u32,
        }
        impl Process for Resetter {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                ctx.set_timer(Duration::from_millis(5), TimerId(1));
                ctx.set_timer(Duration::from_millis(9), TimerId(1));
            }
            fn on_message(&mut self, _: &mut Context<'_>, _: PartId, _: Payload) {}
            fn on_timer(&mut self, ctx: &mut Context<'_>, _timer: TimerId) {
                self.fires += 1;
                assert_eq!(ctx.now(), Instant::from_micros(9_000));
            }
        }
        let mut sim = Simulator::new(SimConfig::new(1));
        sim.add_process(PartId::new(1), Box::new(Resetter { fires: 0 }))
            .unwrap();
        let report = sim.run_to_quiescence(Duration::from_secs(1)).unwrap();
        assert!(report.is_quiescent());
        assert_eq!(report.end_time(), Instant::from_micros(9_000));
    }

    #[test]
    fn timer_cancelled_and_rearmed_at_same_instant_fires_once() {
        // Regression pin for the generation semantics when the stale and
        // the fresh schedule share one firing instant: a timer armed for
        // t=5 ms is cancelled at t=3 ms and immediately re-armed for
        // t=3+2 ms — the *same* instant. Two queue entries now carry equal
        // `at`; only the one with the current generation may fire, and it
        // fires exactly once.
        use std::sync::Mutex;
        struct Rearm {
            fires: Arc<Mutex<Vec<(u64, u64)>>>,
        }
        impl Process for Rearm {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                ctx.set_timer(Duration::from_millis(5), TimerId(1));
                ctx.set_timer(Duration::from_millis(3), TimerId(2));
            }
            fn on_message(&mut self, _: &mut Context<'_>, _: PartId, _: Payload) {}
            fn on_timer(&mut self, ctx: &mut Context<'_>, timer: TimerId) {
                self.fires
                    .lock()
                    .unwrap()
                    .push((timer.0, ctx.now().as_micros()));
                if timer == TimerId(2) {
                    ctx.cancel_timer(TimerId(1));
                    ctx.set_timer(Duration::from_millis(2), TimerId(1));
                }
            }
        }
        let fires = Arc::new(Mutex::new(Vec::new()));
        let mut sim = Simulator::new(SimConfig::new(1));
        sim.add_process(
            PartId::new(1),
            Box::new(Rearm {
                fires: Arc::clone(&fires),
            }),
        )
        .unwrap();
        let report = sim.run_to_quiescence(Duration::from_secs(1)).unwrap();
        assert!(report.is_quiescent());
        // Timer 2 at 3 ms, then timer 1 exactly once at 5 ms — not zero
        // times (cancel must not kill the re-arm) and not twice (the
        // original generation must stay dead).
        assert_eq!(*fires.lock().unwrap(), vec![(2, 3_000), (1, 5_000)]);
        assert_eq!(report.end_time(), Instant::from_micros(5_000));
    }

    #[test]
    fn same_handler_cancel_rearm_chain_keeps_only_last_schedule() {
        // set / cancel / set within one handler, all landing on the same
        // instant: generations 1 and 3 both sit in the queue at t=4 ms;
        // only generation 3 fires.
        struct ChainRearm {
            fires: u32,
        }
        impl Process for ChainRearm {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                ctx.set_timer(Duration::from_millis(4), TimerId(9));
                ctx.cancel_timer(TimerId(9));
                ctx.set_timer(Duration::from_millis(4), TimerId(9));
            }
            fn on_message(&mut self, _: &mut Context<'_>, _: PartId, _: Payload) {}
            fn on_timer(&mut self, ctx: &mut Context<'_>, timer: TimerId) {
                assert_eq!(timer, TimerId(9));
                assert_eq!(ctx.now(), Instant::from_micros(4_000));
                self.fires += 1;
                assert_eq!(self.fires, 1, "superseded schedule fired too");
            }
        }
        let mut sim = Simulator::new(SimConfig::new(1));
        sim.add_process(PartId::new(1), Box::new(ChainRearm { fires: 0 }))
            .unwrap();
        let report = sim.run_to_quiescence(Duration::from_secs(1)).unwrap();
        assert!(report.is_quiescent());
        assert_eq!(report.end_time(), Instant::from_micros(4_000));
    }

    #[test]
    fn simultaneous_events_fire_in_scheduling_order() {
        use std::sync::Mutex;
        struct TwoTimers {
            order: Arc<Mutex<Vec<u64>>>,
        }
        impl Process for TwoTimers {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                // Same firing instant; scheduling order must be preserved.
                ctx.set_timer(Duration::from_millis(1), TimerId(10));
                ctx.set_timer(Duration::from_millis(1), TimerId(20));
                ctx.set_timer(Duration::from_millis(1), TimerId(30));
            }
            fn on_message(&mut self, _: &mut Context<'_>, _: PartId, _: Payload) {}
            fn on_timer(&mut self, _ctx: &mut Context<'_>, timer: TimerId) {
                self.order.lock().unwrap().push(timer.0);
            }
        }
        let order = Arc::new(Mutex::new(Vec::new()));
        let mut sim = Simulator::new(SimConfig::new(1));
        sim.add_process(
            PartId::new(1),
            Box::new(TwoTimers {
                order: Arc::clone(&order),
            }),
        )
        .unwrap();
        sim.run_to_quiescence(Duration::from_secs(1)).unwrap();
        assert_eq!(*order.lock().unwrap(), vec![10, 20, 30]);
    }

    #[test]
    fn bandwidth_limits_throughput() {
        struct BigBurst {
            peer: PartId,
        }
        impl Process for BigBurst {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                for _ in 0..10 {
                    ctx.send(self.peer, vec![0u8; 10_000]); // 10 × 10 KB
                }
            }
            fn on_message(&mut self, _: &mut Context<'_>, _: PartId, _: Payload) {}
        }
        struct Sink;
        impl Process for Sink {
            fn on_message(&mut self, _: &mut Context<'_>, _: PartId, _: Payload) {}
        }
        let run = |link: LinkConfig| {
            let mut sim = Simulator::new(SimConfig::new(1).default_link(link));
            sim.add_process(
                PartId::new(1),
                Box::new(BigBurst {
                    peer: PartId::new(2),
                }),
            )
            .unwrap();
            sim.add_process(PartId::new(2), Box::new(Sink)).unwrap();
            sim.run_to_quiescence(Duration::from_secs(60))
                .unwrap()
                .end_time()
        };
        // 100 KB at 1 MB/s: ~100 ms serialization + 1 ms latency.
        let limited = run(LinkConfig::perfect(Duration::from_millis(1)).with_bandwidth(1_000_000));
        let unlimited = run(LinkConfig::perfect(Duration::from_millis(1)));
        assert_eq!(unlimited, Instant::from_micros(1_000));
        assert_eq!(limited, Instant::from_micros(101_000));
    }

    #[test]
    fn partition_drops_messages_and_heal_restores_them() {
        let mut sim = two_node_sim(LinkConfig::perfect(Duration::from_millis(1)), 1, 40);
        // First slice: healthy.
        let r1 = sim.run_to_quiescence(Duration::from_millis(10)).unwrap();
        let delivered_before = r1.metrics().messages_delivered();
        assert!(delivered_before > 0);
        // Partition and run another slice: sends continue, deliveries stop.
        sim.partition(PartId::new(1), PartId::new(2));
        let r2 = sim.run_to_quiescence(Duration::from_millis(10)).unwrap();
        assert!(r2.metrics().messages_dropped() > 0);
        let delivered_during = r2.metrics().messages_delivered();
        // Heal and finish: deliveries resume.
        sim.heal(PartId::new(1), PartId::new(2));
        let r3 = sim.run_to_quiescence(Duration::from_secs(10)).unwrap();
        assert!(r3.is_quiescent());
        assert!(r3.metrics().messages_delivered() > delivered_during);
        assert_eq!(
            r3.metrics().messages_delivered() + r3.metrics().messages_dropped(),
            40
        );
    }

    #[test]
    fn partition_is_idempotent() {
        // Regression: a second partition of the same pair used to overwrite
        // the saved pre-partition link with the loss-1.0 config, so healing
        // restored a dead link and deliveries never resumed.
        let mut sim = two_node_sim(LinkConfig::perfect(Duration::from_millis(1)), 1, 40);
        let _ = sim.run_to_quiescence(Duration::from_millis(10)).unwrap();
        sim.partition(PartId::new(1), PartId::new(2));
        sim.partition(PartId::new(1), PartId::new(2));
        let r2 = sim.run_to_quiescence(Duration::from_millis(10)).unwrap();
        let delivered_during = r2.metrics().messages_delivered();
        sim.heal(PartId::new(1), PartId::new(2));
        let r3 = sim.run_to_quiescence(Duration::from_secs(10)).unwrap();
        assert!(r3.is_quiescent());
        assert!(
            r3.metrics().messages_delivered() > delivered_during,
            "deliveries must resume after heal even when partition was called twice"
        );
        assert_eq!(
            r3.metrics().messages_delivered() + r3.metrics().messages_dropped(),
            40
        );
    }

    #[test]
    fn heal_restores_an_explicitly_configured_link() {
        let mut sim = two_node_sim(LinkConfig::perfect(Duration::from_millis(1)), 1, 2);
        let custom = LinkConfig::perfect(Duration::from_millis(7));
        sim.set_link_symmetric(PartId::new(1), PartId::new(2), custom.clone());
        sim.partition(PartId::new(1), PartId::new(2));
        sim.heal(PartId::new(1), PartId::new(2));
        // Verify by behaviour: the round trip takes the custom 7 ms latency.
        let report = sim.run_to_quiescence(Duration::from_secs(10)).unwrap();
        assert!(report.is_quiescent());
        assert_eq!(report.metrics().messages_dropped(), 0);
    }

    #[test]
    fn time_limit_interrupts_run_and_can_resume() {
        let mut sim = two_node_sim(LinkConfig::lan(), 1, 100);
        let report = sim.run_to_quiescence(Duration::from_millis(10)).unwrap();
        assert!(!report.is_quiescent());
        let report2 = sim.run_to_quiescence(Duration::from_secs(60)).unwrap();
        assert!(report2.is_quiescent());
        assert_eq!(report2.metrics().messages_sent(), 100);
    }

    #[test]
    fn trace_is_time_sorted_in_report() {
        let order = burst_order(
            LinkConfig::reliable_datagram(Duration::from_millis(1), Duration::from_millis(5)),
            17,
        );
        assert_eq!(order.len(), 30);
    }
}
