//! A hierarchical timer wheel for the simulator event queue.
//!
//! The simulator orders events by `(at, key)`: firing instant first, then
//! the provenance key as the tie-break (see `sim::provenance_key`). A binary heap gives that
//! order in `O(log n)` per operation with poor locality once the queue is
//! thousands of entries deep (retransmission timers, serialized bursts).
//! This module provides the same total order with amortized `O(1)` push
//! and pop, using the hashed-and-hierarchical wheel design of Varghese &
//! Lauck as adapted by modern runtimes.
//!
//! # Geometry
//!
//! Six levels of 64 slots each, with slot widths of `64^L` microseconds:
//! level 0 resolves single microseconds over a 64 µs window, level 5 slots
//! span ~73 minutes, and the whole wheel covers `64^6` µs ≈ 19 simulated
//! hours ahead of `base`. Events beyond that horizon wait in an unsorted
//! `overflow` list and are folded in when the wheel drains — far-future
//! timers are rare and pay their `O(n)` promotion once, not per tick.
//!
//! Shallow queues (at most [`LIST_MAX`] pending events while no slot is
//! occupied) skip the wheel entirely and run as a sorted list in `ready`
//! — see [`TimerWheel::push`]. Both regimes implement the same total
//! order, so the switch is invisible to the pop stream.
//!
//! An event's level is the position of the highest bit in which its firing
//! time differs from `base` (the wheel's current origin); its slot within
//! the level is just that 6-bit field of the firing time. As `base`
//! advances, higher-level slots are *cascaded*: their events re-insert at
//! lower levels, gaining resolution as they get closer — classic timer-
//! wheel behaviour.
//!
//! # Why the exact `(at, key)` order is preserved
//!
//! * The slot an event lands in is a pure function of its firing time and
//!   the level geometry, so two events with the same `at` always share a
//!   slot (or are both in `ready`/`overflow`). No ordering decision is
//!   ever made *between* slots for equal times.
//! * `base` only moves to the start of the next occupied slot of the first
//!   non-empty level. Since every stored event fires strictly after the
//!   old `base`, and lower levels are empty, that slot contains the global
//!   minimum firing time (events at higher levels differ from `base` in a
//!   higher bit, hence fire later).
//! * A drained level-0 slot spans exactly one microsecond, so all its
//!   events share one `at`; they are sorted by `key` before being handed
//!   out, which restores the tie-break order regardless of the order they
//!   were inserted (including re-insertion of an already-popped event when
//!   a run slice hits its deadline).
//! * The `ready` queue holds events at (or, defensively, before) `base`
//!   in `(at, key)` order. A fresh push usually sorts last (provenance
//!   keys grow with the scheduling clock), and any out-of-order arrival —
//!   a deadline push-back, or a same-instant key inversion — re-inserts
//!   at its sorted position.
//!
//! Together these give byte-identical pop streams to the reference
//! `BinaryHeap` backend; `crates/netsim/tests/wheel_oracle.rs` and the
//! property tests below enforce that equivalence.

use std::collections::VecDeque;

use crate::sim::Scheduled;

/// log2 of the number of slots per level.
const SLOT_BITS: u32 = 6;
/// Slots per level.
const SLOTS: usize = 1 << SLOT_BITS;
/// Mask selecting a slot index.
const SLOT_MASK: u64 = (SLOTS as u64) - 1;
/// Number of levels; the wheel spans `2^(SLOT_BITS * LEVELS)` µs.
const LEVELS: usize = 6;
/// While the wheel proper is empty, up to this many events are kept as a
/// plain sorted list in `ready` (list mode). Shallow queues — request/
/// response traffic keeps two or three events pending — are cheaper to
/// serve from a contiguous sorted deque than through slot indexing, and
/// a fresh push is almost always a trailing append. Beyond this depth the
/// list migrates into the wheel and stays there until the queue drains.
const LIST_MAX: usize = 32;
/// Upper bound the adaptive list threshold may grow to. Each migration
/// into the wheel doubles the threshold (the workload evidently runs
/// deeper than the list assumed), and a full drain decays it back toward
/// [`LIST_MAX`]; the cap keeps the ordered-insert cost of list mode
/// bounded even for pathological grow/drain cycles.
const LIST_ADAPT_CAP: usize = 256;

/// Level an event with firing time `at` occupies relative to `base`.
/// Requires `at > base`. Returns `LEVELS` (or more) for the overflow list.
#[inline]
fn level_of(base: u64, at: u64) -> usize {
    debug_assert!(at > base);
    // `| SLOT_MASK` pins the result into level 0 when only the low 6 bits
    // differ (avoids a branch on leading_zeros of zero).
    let masked = (base ^ at) | SLOT_MASK;
    ((63 - masked.leading_zeros()) / SLOT_BITS) as usize
}

/// The shared firing time of `events`, if they all agree (and there is at
/// least one event).
#[inline]
fn uniform_at(events: &[Scheduled]) -> Option<u64> {
    let first = events.first()?.at.as_micros();
    events[1..]
        .iter()
        .all(|e| e.at.as_micros() == first)
        .then_some(first)
}

/// Hierarchical timer wheel holding [`Scheduled`] events in exact
/// `(at, key)` order.
#[derive(Debug)]
pub(crate) struct TimerWheel {
    /// Origin of the wheel, in µs. Every event stored in `slots` or
    /// `overflow` fires strictly after `base`; events at (or before)
    /// `base` live in `ready`.
    base: u64,
    /// Total number of stored events across `ready`, `slots`, `overflow`.
    len: usize,
    /// One occupancy bitmap per level (bit `s` set ⇔ slot `s` non-empty).
    occupied: [u64; LEVELS],
    /// `LEVELS * SLOTS` buckets; vectors keep their capacity across use.
    slots: Vec<Vec<Scheduled>>,
    /// Events beyond the wheel horizon, unordered.
    overflow: Vec<Scheduled>,
    /// Events due now, in `(at, key)` order; popped from the front.
    ready: VecDeque<Scheduled>,
    /// Scratch buffer reused by cascades to avoid re-allocation.
    cascade_buf: Vec<Scheduled>,
    /// Adaptive list-mode threshold: starts at [`LIST_MAX`], doubles on
    /// each forced migration into the wheel (capped at
    /// [`LIST_ADAPT_CAP`]), and decays toward [`LIST_MAX`] when the queue
    /// fully drains. Queues that repeatedly hover just past a fixed
    /// threshold would otherwise pay the migration on every burst.
    list_max: usize,
}

impl TimerWheel {
    pub(crate) fn new() -> Self {
        TimerWheel {
            base: 0,
            len: 0,
            occupied: [0; LEVELS],
            slots: (0..LEVELS * SLOTS).map(|_| Vec::new()).collect(),
            overflow: Vec::new(),
            ready: VecDeque::new(),
            cascade_buf: Vec::new(),
            list_max: LIST_MAX,
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.len
    }

    pub(crate) fn push(&mut self, event: Scheduled) {
        self.len += 1;
        let at = event.at.as_micros();
        if self.len - 1 == self.ready.len() {
            // List mode: the wheel proper is empty, so `ready` holds the
            // whole queue as a sorted list and pushes are a (usually
            // trailing) ordered insert. At ping-pong depths this beats
            // both the heap and the wheel machinery; the wheel engages
            // only once the queue is deep enough to pay for itself.
            if self.ready.len() < self.list_max {
                self.push_ready(event);
                return;
            }
            self.migrate_to_wheel();
        }
        if at <= self.base {
            self.push_ready(event);
        } else {
            self.insert(event);
        }
    }

    /// Leaves list mode: re-bases the wheel at the earliest pending
    /// instant and files everything later than it into slots/overflow.
    fn migrate_to_wheel(&mut self) {
        debug_assert!(self.occupied.iter().all(|&o| o == 0) && self.overflow.is_empty());
        // The workload outgrew list mode; be slower to re-enter it.
        self.list_max = (self.list_max * 2).min(LIST_ADAPT_CAP);
        let min_at = self
            .ready
            .front()
            .expect("migration only happens on a full list")
            .at
            .as_micros();
        self.base = min_at;
        let split = self
            .ready
            .iter()
            .position(|e| e.at.as_micros() != min_at)
            .unwrap_or(self.ready.len());
        let rest = self.ready.split_off(split);
        for event in rest {
            self.insert(event);
        }
    }

    /// Pops the event with the smallest `(at, key)`, advancing `base` as
    /// needed.
    pub(crate) fn pop(&mut self) -> Option<Scheduled> {
        loop {
            if let Some(event) = self.ready.pop_front() {
                self.len -= 1;
                if self.len == 0 {
                    // Full drain: halve the adaptive threshold back toward
                    // its base, so a one-off deep burst does not leave a
                    // permanently expensive list mode behind.
                    self.list_max = (self.list_max / 2).max(LIST_MAX);
                }
                return Some(event);
            }
            if self.len == 0 {
                return None;
            }
            if !self.advance() {
                self.promote_overflow();
            }
        }
    }

    /// The earliest pending event without removing it. Shares the advance
    /// machinery with [`TimerWheel::pop`]: the head must first be surfaced
    /// into `ready`, which moves `base` exactly as popping would.
    pub(crate) fn peek(&mut self) -> Option<&Scheduled> {
        loop {
            // NLL workaround: probing `self.ready.front()` directly holds
            // the borrow across the advance calls below.
            if !self.ready.is_empty() {
                return self.ready.front();
            }
            if self.len == 0 {
                return None;
            }
            if !self.advance() {
                self.promote_overflow();
            }
        }
    }

    /// Appends to `ready`, keeping `(at, key)` order. The fast path is a
    /// plain append: provenance keys lead with the scheduling instant, so
    /// a freshly scheduled event almost always sorts after everything
    /// already stored. The sorted insert runs when a popped event is
    /// pushed back (run-slice deadline) or a same-instant key inversion
    /// arrives.
    fn push_ready(&mut self, event: Scheduled) {
        let key = (event.at, event.key);
        match self.ready.back() {
            Some(last) if (last.at, last.key) > key => {
                let pos = self
                    .ready
                    .iter()
                    .position(|e| (e.at, e.key) > key)
                    .unwrap_or(self.ready.len());
                self.ready.insert(pos, event);
            }
            _ => self.ready.push_back(event),
        }
    }

    /// Files an event into its wheel slot (or overflow). Requires
    /// `event.at > base`. Does not touch `len`.
    fn insert(&mut self, event: Scheduled) {
        let at = event.at.as_micros();
        let level = level_of(self.base, at);
        if level >= LEVELS {
            self.overflow.push(event);
            return;
        }
        let slot = ((at >> (SLOT_BITS * level as u32)) & SLOT_MASK) as usize;
        self.occupied[level] |= 1 << slot;
        self.slots[level * SLOTS + slot].push(event);
    }

    /// Drains the next occupied slot of the first non-empty level into
    /// `ready` (level 0) or back into lower levels (cascade). Returns
    /// `false` when every level is empty and only `overflow` holds events.
    fn advance(&mut self) -> bool {
        let Some(level) = (0..LEVELS).find(|&l| self.occupied[l] != 0) else {
            return false;
        };
        let shift = SLOT_BITS * level as u32;
        let slot = self.occupied[level].trailing_zeros() as u64;
        // Every stored event fires after `base` and shares its bits above
        // this level with `base` (see module docs), so the next occupied
        // slot is always ahead of the cursor — never a wrapped leftover.
        debug_assert!(slot > (self.base >> shift) & SLOT_MASK);
        let window = self.base & !((1u64 << (shift + SLOT_BITS)) - 1);
        let deadline = window + (slot << shift);
        debug_assert!(deadline > self.base);
        self.occupied[level] &= !(1 << slot);
        self.base = deadline;

        let index = level * SLOTS + slot as usize;
        if self.slots[index].len() == 1 {
            // Sparse-queue fast path (ping-pong style traffic keeps one
            // event per slot): the slot's only event is the global
            // minimum, so jump `base` to its instant and hand it straight
            // to `ready` — no buffer swap, no sort, no re-insertion.
            let event = self.slots[index].pop().expect("slot has one event");
            self.base = event.at.as_micros();
            self.ready.push_back(event);
            return true;
        }
        let mut drained = std::mem::take(&mut self.cascade_buf);
        std::mem::swap(&mut drained, &mut self.slots[index]);
        if level == 0 {
            // A level-0 slot spans one microsecond: every event shares
            // `at == deadline`, so sorting by `key` restores the
            // tie-break order exactly.
            drained.sort_unstable_by_key(|e| e.key);
            debug_assert!(drained.iter().all(|e| e.at.as_micros() == deadline));
            self.ready.extend(drained.drain(..));
        } else if let Some(common_at) = uniform_at(&drained) {
            // Every event in the slot fires at one instant — the common
            // case for sparse queues (one pending delivery per link). The
            // slot held the global minimum, same-`at` events always share
            // a slot, and everything else in the wheel fires in a later
            // window — so `base` can jump straight to that instant and
            // the events go to `ready` directly, skipping the cascade
            // re-insertion and the follow-up level-0 drain.
            self.base = common_at;
            drained.sort_unstable_by_key(|e| e.key);
            self.ready.extend(drained.drain(..));
        } else {
            for event in drained.drain(..) {
                debug_assert!(event.at.as_micros() >= deadline);
                if event.at.as_micros() == self.base {
                    self.ready.push_back(event);
                } else {
                    self.insert(event);
                }
            }
            self.ready.make_contiguous().sort_unstable_by_key(|e| e.key);
        }
        self.cascade_buf = drained;
        true
    }

    /// All levels are empty but `overflow` is not: jump `base` to the
    /// earliest overflow deadline and file every event that now fits.
    fn promote_overflow(&mut self) {
        debug_assert!(self.ready.is_empty() && !self.overflow.is_empty());
        let min_at = self
            .overflow
            .iter()
            .map(|e| e.at.as_micros())
            .min()
            .expect("overflow is non-empty");
        self.base = min_at;
        let mut i = 0;
        while i < self.overflow.len() {
            let at = self.overflow[i].at.as_micros();
            if at == min_at {
                let event = self.overflow.swap_remove(i);
                self.ready.push_back(event);
            } else if level_of(min_at, at) < LEVELS {
                let event = self.overflow.swap_remove(i);
                self.insert(event);
            } else {
                i += 1;
            }
        }
        self.ready.make_contiguous().sort_unstable_by_key(|e| e.key);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{EventKind, TimerId};
    use proptest::prelude::*;
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    use svckit_model::{Instant, PartId};

    fn event(at: u64, seq: u64) -> Scheduled {
        Scheduled {
            at: Instant::from_micros(at),
            key: seq as u128,
            kind: EventKind::Timer {
                node: PartId::new(1),
                id: TimerId(seq),
                generation: 1,
                ctx: None,
            },
        }
    }

    fn key(e: &Scheduled) -> (u64, u128) {
        (e.at.as_micros(), e.key)
    }

    #[test]
    fn pops_in_at_then_seq_order() {
        let mut wheel = TimerWheel::new();
        for (at, seq) in [(5, 3), (5, 1), (0, 2), (1000, 4), (64, 5), (63, 6)] {
            wheel.push(event(at, seq));
        }
        let mut out = Vec::new();
        while let Some(e) = wheel.pop() {
            out.push(key(&e));
        }
        assert_eq!(
            out,
            vec![(0, 2), (5, 1), (5, 3), (63, 6), (64, 5), (1000, 4)]
        );
    }

    #[test]
    fn far_future_events_go_through_overflow() {
        let mut wheel = TimerWheel::new();
        let horizon = 1u64 << (SLOT_BITS * LEVELS as u32);
        wheel.push(event(horizon + 17, 1));
        wheel.push(event(3, 2));
        wheel.push(event(horizon * 3, 3));
        assert_eq!(wheel.len(), 3);
        assert_eq!(key(&wheel.pop().unwrap()), (3, 2));
        assert_eq!(key(&wheel.pop().unwrap()), (horizon + 17, 1));
        assert_eq!(key(&wheel.pop().unwrap()), (horizon * 3, 3));
        assert!(wheel.pop().is_none());
    }

    #[test]
    fn popped_event_can_be_pushed_back_and_pops_first_again() {
        // run_to_quiescence pops one event past its deadline and re-inserts
        // it; the wheel must hand it out first on the next pop even though
        // its sequence number is older than other same-instant events.
        let mut wheel = TimerWheel::new();
        wheel.push(event(10, 1));
        wheel.push(event(10, 2));
        wheel.push(event(10, 3));
        let first = wheel.pop().unwrap();
        assert_eq!(key(&first), (10, 1));
        wheel.push(first);
        assert_eq!(key(&wheel.pop().unwrap()), (10, 1));
        assert_eq!(key(&wheel.pop().unwrap()), (10, 2));
        assert_eq!(key(&wheel.pop().unwrap()), (10, 3));
    }

    #[test]
    fn drained_at_rollover_boundaries() {
        // Events straddling exact 64^k boundaries exercise the cascade's
        // window arithmetic (slot 0 of the next higher-level rotation).
        let mut wheel = TimerWheel::new();
        let ats = [63, 64, 65, 4095, 4096, 4097, 262_143, 262_144, 262_145];
        for (i, &at) in ats.iter().enumerate() {
            wheel.push(event(at, i as u64 + 1));
        }
        let mut popped = Vec::new();
        while let Some(e) = wheel.pop() {
            popped.push(e.at.as_micros());
        }
        let mut expected = ats.to_vec();
        expected.sort_unstable();
        assert_eq!(popped, expected);
    }

    #[test]
    fn list_mode_migrates_into_wheel_past_threshold() {
        // More than LIST_MAX live events forces the sorted-list fast path
        // to migrate into wheel slots; order must be seamless across the
        // regime change, including ties at the migration minimum.
        let mut wheel = TimerWheel::new();
        let mut expected = Vec::new();
        for seq in 1..=(LIST_MAX as u64 + 16) {
            let at = (seq * 37) % 11; // clustered, tie-heavy instants
            wheel.push(event(at, seq));
            expected.push((at, seq as u128));
        }
        expected.sort_unstable();
        let mut popped = Vec::new();
        while let Some(e) = wheel.pop() {
            popped.push(key(&e));
        }
        assert_eq!(popped, expected);
    }

    /// Interleaved script against the reference heap; `at` deltas are drawn
    /// from boundary-rich ranges, pops interleave with pushes, and popped
    /// events are occasionally pushed back (run-slice deadline pattern).
    fn run_oracle(script: &[(u8, u64)]) {
        let mut wheel = TimerWheel::new();
        let mut heap: BinaryHeap<Reverse<Scheduled>> = BinaryHeap::new();
        let mut seq = 0u64;
        let mut clock = 0u64; // max at popped so far; pushes never go below
        for &(op, delta) in script {
            match op {
                // push at clock + delta
                0..=5 => {
                    seq += 1;
                    let at = clock + delta;
                    wheel.push(event(at, seq));
                    heap.push(Reverse(event(at, seq)));
                }
                // pop from both, compare
                6..=8 => {
                    let w = wheel.pop();
                    let h = heap.pop().map(|Reverse(e)| e);
                    assert_eq!(w.as_ref().map(key), h.as_ref().map(key));
                    if let Some(e) = &w {
                        clock = clock.max(e.at.as_micros());
                    }
                }
                // pop then push back (deadline pattern), compare
                _ => {
                    let w = wheel.pop();
                    let h = heap.pop().map(|Reverse(e)| e);
                    assert_eq!(w.as_ref().map(key), h.as_ref().map(key));
                    if let (Some(we), Some(he)) = (w, h) {
                        clock = clock.max(we.at.as_micros());
                        wheel.push(we);
                        heap.push(Reverse(he));
                    }
                }
            }
            assert_eq!(wheel.len(), heap.len());
        }
        // Drain both completely.
        loop {
            let w = wheel.pop();
            let h = heap.pop().map(|Reverse(e)| e);
            assert_eq!(w.as_ref().map(key), h.as_ref().map(key));
            if w.is_none() {
                break;
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        #[test]
        fn wheel_matches_heap_on_arbitrary_scripts(
            script in proptest::collection::vec(
                (0u8..10, prop_oneof![
                    0u64..4,              // same-instant ties
                    60u64..70,            // level-0/1 boundary
                    4_090u64..4_102,      // level-1/2 boundary
                    1u64..100_000,        // general small delays
                    (1u64 << 36) - 5..(1u64 << 36) + 5, // wheel horizon
                    (1u64 << 37)..(1u64 << 38), // deep overflow
                ]),
                0..120,
            )
        ) {
            run_oracle(&script);
        }

        #[test]
        fn wheel_matches_heap_on_dense_same_instant_bursts(
            script in proptest::collection::vec((0u8..10, 0u64..3), 0..200)
        ) {
            run_oracle(&script);
        }
    }
}
