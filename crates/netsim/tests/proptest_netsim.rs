//! Property-based tests of the simulator's delivery guarantees.

use std::sync::{Arc, Mutex};

use proptest::prelude::*;

use svckit_model::{Duration, PartId};
use svckit_netsim::{Context, LinkConfig, Payload, Process, SimConfig, Simulator};

/// Fires `n` numbered messages at start.
struct Burst {
    peer: PartId,
    n: u8,
}
impl Process for Burst {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        for i in 0..self.n {
            ctx.send(self.peer, vec![i]);
        }
    }
    fn on_message(&mut self, _: &mut Context<'_>, _: PartId, _: Payload) {}
}

struct Collector {
    seen: Arc<Mutex<Vec<u8>>>,
}
impl Process for Collector {
    fn on_message(&mut self, _: &mut Context<'_>, _: PartId, payload: Payload) {
        self.seen.lock().unwrap().push(payload[0]);
    }
}

fn run_burst(link: LinkConfig, n: u8, seed: u64) -> (Vec<u8>, u64, u64) {
    let seen = Arc::new(Mutex::new(Vec::new()));
    let mut sim = Simulator::new(SimConfig::new(seed).default_link(link));
    sim.add_process(
        PartId::new(1),
        Box::new(Burst {
            peer: PartId::new(2),
            n,
        }),
    )
    .unwrap();
    sim.add_process(
        PartId::new(2),
        Box::new(Collector {
            seen: Arc::clone(&seen),
        }),
    )
    .unwrap();
    let report = sim.run_to_quiescence(Duration::from_secs(600)).unwrap();
    assert!(report.is_quiescent());
    let out = seen.lock().unwrap().clone();
    (
        out,
        report.metrics().messages_delivered(),
        report.metrics().messages_dropped(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Ordered links preserve per-pair FIFO for any latency/jitter/seed.
    #[test]
    fn ordered_links_always_deliver_fifo(
        latency_us in 1u64..5_000,
        jitter_us in 0u64..10_000,
        seed in 0u64..1_000,
        n in 1u8..40,
    ) {
        let link = LinkConfig::reliable_stream(
            Duration::from_micros(latency_us),
            Duration::from_micros(jitter_us),
        );
        let (seen, delivered, dropped) = run_burst(link, n, seed);
        prop_assert_eq!(seen.len(), n as usize);
        prop_assert_eq!(delivered, n as u64);
        prop_assert_eq!(dropped, 0);
        let mut sorted = seen.clone();
        sorted.sort_unstable();
        prop_assert_eq!(seen, sorted);
    }

    /// Delivered + dropped always accounts for every send on lossy links.
    #[test]
    fn loss_accounting_is_exact(
        loss in 0.0f64..1.0,
        seed in 0u64..1_000,
        n in 1u8..60,
    ) {
        let link = LinkConfig::lossy(Duration::from_millis(1), Duration::ZERO, loss);
        let (seen, delivered, dropped) = run_burst(link, n, seed);
        prop_assert_eq!(delivered + dropped, n as u64);
        prop_assert_eq!(seen.len() as u64, delivered);
    }

    /// Identical seeds reproduce identical outcomes; delivery is a
    /// pure function of (config, seed).
    #[test]
    fn same_seed_same_delivery(seed in 0u64..1_000, n in 1u8..30) {
        let link = LinkConfig::lossy(
            Duration::from_millis(1),
            Duration::from_micros(500),
            0.3,
        );
        let a = run_burst(link.clone(), n, seed);
        let b = run_burst(link, n, seed);
        prop_assert_eq!(a, b);
    }
}
