//! Property-test oracle: on deterministic links the sharded
//! conservative-lookahead engine must be observationally
//! indistinguishable from the single-threaded reference engine, for
//! every shard count.
//!
//! Each case builds the *same* scripted multi-node workload at
//! `shards ∈ {1, 2, 4}` and asserts that every observable is
//! byte-identical: each node's ordered handler-invocation log (which
//! handler, at which instant, with which argument — including values
//! drawn from the node's RNG stream) and the per-slice `SimReport`
//! debug rendering (metrics, merged trace, end time, quiescence).
//! Logs are compared *per node*: a node's dispatch order is part of the
//! determinism contract, the wall-clock interleaving of different
//! shards' handlers is not.
//!
//! The scripts interleave timer arm/cancel/re-arm, sends to arbitrary
//! peers (including self-sends, which never cross a shard), and node
//! RNG draws; topologies get per-pair latency overrides (every latency
//! strictly positive, so the lookahead window exists), optional
//! bandwidth limits and ordering flags; and fault scripts partition and
//! heal arbitrary pairs between run slices — partitioned links carry
//! `loss = 1.0`, which drops without consuming link randomness, so they
//! stay inside the deterministic envelope the equivalence claim covers.
//!
//! A second property holds on *all* links, jittered ones included: the
//! sharded engine draws link randomness from per-directed-pair streams,
//! so its output cannot depend on how nodes are partitioned into
//! shards. Shard counts ≥ 2 must agree byte for byte even when the
//! single-threaded reference (which draws from one global link stream)
//! legitimately differs.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use proptest::prelude::*;

use svckit_model::{Duration, PartId};
use svckit_netsim::{
    Context, LinkConfig, Payload, Process, SimConfig, SimError, Simulator, TimerId,
};

/// One scripted action, applied from inside a handler.
#[derive(Debug, Clone)]
enum Op {
    /// Arm (or re-arm) timer `id` to fire `delay` µs from now.
    Set { id: u64, delay: u64 },
    /// Cancel timer `id` (generation bump; pending firings go stale).
    Cancel { id: u64 },
    /// Send one byte to peer `1 + (peer % nodes)` (possibly self).
    Send { peer: u64, byte: u8 },
    /// Draw from the node's RNG stream and log the value: the streams
    /// must coincide across engines, not just the dispatch order.
    Rand,
}

/// A fault applied between run slices: partition or heal `a ↔ b`.
#[derive(Debug, Clone, Copy)]
struct Fault {
    partition: bool,
    a: u64,
    b: u64,
}

/// The tick timer driving the script forward; never a script target.
const TICK: TimerId = TimerId(1_000);

/// Runs one batch of ops per handler invocation, logging every event to
/// its own per-node log.
struct Driver {
    nodes: u64,
    script: VecDeque<Vec<Op>>,
    batch: u64,
    log: Arc<Mutex<Vec<String>>>,
}

impl Driver {
    fn step(&mut self, ctx: &mut Context<'_>) {
        let Some(batch) = self.script.pop_front() else {
            return;
        };
        for op in batch {
            match op {
                Op::Set { id, delay } => {
                    ctx.set_timer(Duration::from_micros(delay), TimerId(id));
                }
                Op::Cancel { id } => ctx.cancel_timer(TimerId(id)),
                Op::Send { peer, byte } => {
                    ctx.send(PartId::new(1 + (peer % self.nodes)), vec![byte]);
                }
                Op::Rand => {
                    let v = ctx.rand_u64();
                    self.log.lock().unwrap().push(format!("rand {v}"));
                }
            }
        }
        self.batch += 1;
        if !self.script.is_empty() {
            ctx.set_timer(Duration::from_micros(1 + (self.batch * 13) % 97), TICK);
        }
    }
}

impl Process for Driver {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        self.log
            .lock()
            .unwrap()
            .push(format!("start {:?}", ctx.now()));
        self.step(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, id: TimerId) {
        self.log
            .lock()
            .unwrap()
            .push(format!("timer {:?} {:?}", ctx.now(), id));
        self.step(ctx);
    }

    fn on_message(&mut self, ctx: &mut Context<'_>, from: PartId, payload: Payload) {
        self.log
            .lock()
            .unwrap()
            .push(format!("msg {:?} {from:?} {:?}", ctx.now(), &payload[..]));
        self.step(ctx);
    }
}

/// A per-pair symmetric link override, decoded from the raw case.
#[derive(Debug, Clone, Copy)]
struct Override {
    a: u64,
    b: u64,
    latency_us: u64,
    bandwidth: bool,
    ordered: bool,
}

/// Everything one oracle case varies.
#[derive(Debug, Clone)]
struct Case {
    nodes: u64,
    default_latency_us: u64,
    /// Jitter bound on the default link. Must stay 0 when comparing
    /// against the single-threaded reference; the shard-count-invariance
    /// property tolerates any value.
    default_jitter_us: u64,
    scripts: Vec<Vec<Vec<Op>>>,
    overrides: Vec<Override>,
    faults: Vec<Fault>,
    slices: Vec<u64>,
}

/// Runs the case at a given shard count; returns the per-node handler
/// logs and the per-slice report debug strings.
fn run_case(case: &Case, shards: u32) -> (Vec<Vec<String>>, Vec<String>) {
    let mut sim = Simulator::new(
        SimConfig::new(0xC0FFEE)
            .default_link(
                LinkConfig::perfect(Duration::from_micros(case.default_latency_us))
                    .with_jitter(Duration::from_micros(case.default_jitter_us)),
            )
            .shards(shards),
    );
    let logs: Vec<Arc<Mutex<Vec<String>>>> = (0..case.nodes)
        .map(|_| Arc::new(Mutex::new(Vec::new())))
        .collect();
    for (i, log) in logs.iter().enumerate() {
        sim.add_process(
            PartId::new(1 + i as u64),
            Box::new(Driver {
                nodes: case.nodes,
                script: case.scripts[i % case.scripts.len()]
                    .iter()
                    .cloned()
                    .collect(),
                batch: 0,
                log: Arc::clone(log),
            }),
        )
        .unwrap();
    }
    for o in &case.overrides {
        let (a, b) = (1 + o.a % case.nodes, 1 + o.b % case.nodes);
        let mut link =
            LinkConfig::perfect(Duration::from_micros(o.latency_us)).with_ordering(o.ordered);
        if o.bandwidth {
            link = link.with_bandwidth(1_000_000);
        }
        sim.set_link_symmetric(PartId::new(a), PartId::new(b), link);
    }
    let mut reports = Vec::new();
    for (i, &cap) in case.slices.iter().enumerate() {
        if let Some(f) = case.faults.get(i) {
            let (a, b) = (1 + f.a % case.nodes, 1 + f.b % case.nodes);
            if a != b {
                if f.partition {
                    sim.partition(PartId::new(a), PartId::new(b));
                } else {
                    sim.heal(PartId::new(a), PartId::new(b));
                }
            }
        }
        let report = sim
            .run_to_quiescence(Duration::from_micros(cap))
            .expect("processes registered, all latencies positive");
        reports.push(format!("{report:?}"));
    }
    // Final slice: heal everything and drain. Scripts are finite and
    // dropped messages are gone, so quiescence is guaranteed.
    for f in &case.faults {
        let (a, b) = (1 + f.a % case.nodes, 1 + f.b % case.nodes);
        if a != b {
            sim.heal(PartId::new(a), PartId::new(b));
        }
    }
    let report = sim
        .run_to_quiescence(Duration::from_secs(600))
        .expect("processes registered");
    assert!(report.is_quiescent(), "final slice must drain the queue");
    reports.push(format!("events={} {report:?}", sim.events_processed()));
    let events = logs.iter().map(|log| log.lock().unwrap().clone()).collect();
    (events, reports)
}

/// Asserts shard counts 1, 2 and 4 produce byte-identical observables.
fn assert_shard_counts_agree(case: &Case) {
    let (base_logs, base_reports) = run_case(case, 1);
    for shards in [2u32, 4] {
        let (logs, reports) = run_case(case, shards);
        assert_eq!(
            base_logs, logs,
            "handler streams diverged at shards={shards}"
        );
        assert_eq!(base_reports, reports, "reports diverged at shards={shards}");
    }
}

/// Asserts shard counts 2, 3 and 4 produce byte-identical observables
/// *among themselves* — the invariance that holds on every link,
/// jittered or not, because all link randomness is per-pair. The
/// single-threaded engine is deliberately not in this comparison.
fn assert_sharded_counts_invariant(case: &Case) {
    let (base_logs, base_reports) = run_case(case, 2);
    for shards in [3u32, 4] {
        let (logs, reports) = run_case(case, shards);
        assert_eq!(
            base_logs, logs,
            "handler streams diverged between shards=2 and shards={shards}"
        );
        assert_eq!(
            base_reports, reports,
            "reports diverged between shards=2 and shards={shards}"
        );
    }
}

type RawBatch = Vec<(u8, u64, u64, u64, u8)>;

/// Decodes raw proptest tuples into one node's op batches.
fn decode(raw: &[RawBatch]) -> Vec<Vec<Op>> {
    raw.iter()
        .map(|batch| {
            batch
                .iter()
                .map(|&(kind, id, delay, peer, byte)| match kind {
                    0..=3 => Op::Set { id, delay },
                    4..=5 => Op::Cancel { id },
                    6..=8 => Op::Send { peer, byte },
                    _ => Op::Rand,
                })
                .collect()
        })
        .collect()
}

/// Delay distribution rich in ties and window-boundary values.
fn delay_strategy() -> impl Strategy<Value = u64> {
    prop_oneof![
        Just(0u64),
        0u64..4,
        450u64..550,   // straddles the shortest lookahead windows
        900u64..1_100, // straddles the default-latency window
        1u64..20_000,
    ]
}

/// One node's script: a handful of batches of ops.
fn script_strategy() -> impl Strategy<Value = Vec<RawBatch>> {
    proptest::collection::vec(
        proptest::collection::vec(
            (0u8..12, 0u64..6, delay_strategy(), 0u64..8, 0u8..250),
            0..4,
        ),
        0..6,
    )
}

fn case_strategy() -> impl Strategy<Value = Case> {
    (
        2u64..6,
        prop_oneof![Just(500u64), Just(1_000), Just(2_000)],
        proptest::collection::vec(script_strategy(), 1..6),
        proptest::collection::vec(
            (
                0u64..8,
                0u64..8,
                300u64..3_000,
                any::<bool>(),
                any::<bool>(),
            ),
            0..4,
        ),
        proptest::collection::vec((any::<bool>(), 0u64..8, 0u64..8), 0..4),
        proptest::collection::vec(1u64..30_000, 0..4),
    )
        .prop_map(
            |(nodes, default_latency_us, scripts, overrides, faults, slices)| Case {
                nodes,
                default_latency_us,
                default_jitter_us: 0,
                scripts: scripts.iter().map(|s| decode(s)).collect(),
                overrides: overrides
                    .into_iter()
                    .map(|(a, b, latency_us, bandwidth, ordered)| Override {
                        a,
                        b,
                        latency_us,
                        bandwidth,
                        ordered,
                    })
                    .collect(),
                faults: faults
                    .into_iter()
                    .map(|(partition, a, b)| Fault { partition, a, b })
                    .collect(),
                slices,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary topologies, scripts, per-pair link overrides, fault
    /// schedules and run slicings: shards 1, 2 and 4 agree byte for
    /// byte, per node and per report.
    #[test]
    fn shard_counts_agree_on_arbitrary_cases(case in case_strategy()) {
        assert_shard_counts_agree(&case);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The same arbitrary cases with a jittered default link: every
    /// delivery draws from its pair's stream, so shard counts 2, 3 and
    /// 4 still agree byte for byte (shards = 1 is excluded — it samples
    /// a different, equally valid, global stream).
    #[test]
    fn sharded_engine_is_shard_count_invariant_under_jitter(
        case in case_strategy(),
        jitter_us in 1u64..400,
    ) {
        let mut case = case;
        case.default_jitter_us = jitter_us;
        assert_sharded_counts_invariant(&case);
    }
}

/// Deterministic pin: a partition injected mid-run and healed later is
/// applied at the same virtual instant by every engine, so drop counts
/// and post-heal deliveries line up exactly.
#[test]
fn partition_and_heal_are_shard_invariant() {
    let chat = |peer: u64| {
        vec![
            vec![Op::Send { peer, byte: 10 }, Op::Set { id: 1, delay: 700 }],
            vec![Op::Send { peer, byte: 20 }],
            vec![Op::Send { peer, byte: 30 }, Op::Rand],
            vec![Op::Send { peer, byte: 40 }],
        ]
    };
    let case = Case {
        nodes: 4,
        default_latency_us: 500,
        default_jitter_us: 0,
        scripts: vec![chat(1), chat(2), chat(3), chat(0)],
        overrides: vec![],
        faults: vec![
            Fault {
                partition: true,
                a: 0,
                b: 1,
            },
            Fault {
                partition: false,
                a: 0,
                b: 1,
            },
        ],
        slices: vec![900, 2_000, 8_000],
    };
    assert_shard_counts_agree(&case);
}

/// Deterministic pin: bandwidth serialization and FIFO ordering clamps
/// are sender-side state, so they partition cleanly across shards.
#[test]
fn bandwidth_and_ordering_are_shard_invariant() {
    let case = Case {
        nodes: 3,
        default_latency_us: 1_000,
        default_jitter_us: 0,
        scripts: vec![vec![vec![
            Op::Send { peer: 1, byte: 1 },
            Op::Send { peer: 1, byte: 2 },
            Op::Send { peer: 2, byte: 3 },
            Op::Send { peer: 1, byte: 4 },
        ]]],
        overrides: vec![Override {
            a: 0,
            b: 1,
            latency_us: 800,
            bandwidth: true,
            ordered: true,
        }],
        faults: vec![],
        slices: vec![1_500],
    };
    assert_shard_counts_agree(&case);
}

/// Deterministic pin: a wan-grade jitter bound (5 ms on a 2 ms link)
/// with partitions layered on top — the messiest realistic envelope —
/// is still shard-count invariant, because drops, duplicates and jitter
/// all draw from the sending pair's private stream.
#[test]
fn jittered_links_are_shard_count_invariant() {
    let chat = |peer: u64| {
        vec![
            vec![Op::Send { peer, byte: 1 }, Op::Set { id: 2, delay: 900 }],
            vec![Op::Send { peer, byte: 2 }, Op::Rand],
            vec![Op::Send { peer, byte: 3 }],
        ]
    };
    let case = Case {
        nodes: 5,
        default_latency_us: 2_000,
        default_jitter_us: 5_000,
        scripts: vec![chat(1), chat(2), chat(3), chat(4), chat(0)],
        overrides: vec![Override {
            a: 1,
            b: 3,
            latency_us: 700,
            bandwidth: true,
            ordered: false,
        }],
        faults: vec![
            Fault {
                partition: true,
                a: 0,
                b: 2,
            },
            Fault {
                partition: false,
                a: 0,
                b: 2,
            },
        ],
        slices: vec![1_500, 4_000, 12_000],
    };
    assert_sharded_counts_invariant(&case);
}

/// A zero-latency link makes the lookahead window empty: the sharded
/// engine must refuse to run rather than guess, and the single engine
/// must keep accepting it (the historical behaviour).
#[test]
fn zero_lookahead_is_rejected_only_when_sharded() {
    let build = |shards: u32| {
        let mut sim = Simulator::new(
            SimConfig::new(9)
                .default_link(LinkConfig::perfect(Duration::ZERO))
                .shards(shards),
        );
        sim.add_process(
            PartId::new(1),
            Box::new(Driver {
                nodes: 1,
                script: VecDeque::new(),
                batch: 0,
                log: Arc::new(Mutex::new(Vec::new())),
            }),
        )
        .unwrap();
        sim.run_to_quiescence(Duration::from_secs(1))
    };
    assert!(build(1).is_ok());
    assert!(matches!(build(4), Err(SimError::ZeroLookahead)));
}
