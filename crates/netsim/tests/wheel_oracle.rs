//! Property-test oracle: the timer-wheel and binary-heap event-queue
//! backends must be observationally indistinguishable through the public
//! simulator API.
//!
//! Each case builds the *same* scripted workload twice — once per
//! [`QueueBackend`] — and asserts that every observable is byte-identical:
//! the ordered handler-invocation log (which handler, at which instant,
//! with which argument) and the per-slice `SimReport` debug rendering
//! (metrics, traces, end time, quiescence). The scripts interleave
//! schedule/cancel/re-arm/send operations, including same-instant ties
//! (zero-delay timers and equal deadlines), cancel-then-re-arm at the
//! same instant (stale generation drops), cascade-boundary delays, and
//! far-future timers that cross the wheel's overflow horizon; runs are
//! sliced into several `run_to_quiescence` calls so deadline push-back is
//! exercised too.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use proptest::prelude::*;

use svckit_model::{Duration, PartId};
use svckit_netsim::{
    Context, LinkConfig, Payload, Process, QueueBackend, SimConfig, Simulator, TimerId,
};

/// One scripted action, applied from inside a handler.
#[derive(Debug, Clone)]
enum Op {
    /// Arm (or re-arm) timer `id` to fire `delay` µs from now.
    Set { id: u64, delay: u64 },
    /// Cancel timer `id` (generation bump; pending firings go stale).
    Cancel { id: u64 },
    /// Cancel and immediately re-arm `id` at the same instant it was
    /// armed for — the equal-`at`, bumped-generation edge case.
    CancelReset { id: u64, delay: u64 },
    /// Send one byte to the peer node.
    Send { byte: u8 },
}

/// The tick timer driving the script forward; never a script target.
const TICK: TimerId = TimerId(1_000);

/// Runs one batch of ops per handler invocation, logging every event.
struct Driver {
    peer: PartId,
    script: VecDeque<Vec<Op>>,
    batch: u64,
    log: Arc<Mutex<Vec<String>>>,
}

impl Driver {
    fn step(&mut self, ctx: &mut Context<'_>) {
        let Some(batch) = self.script.pop_front() else {
            return;
        };
        for op in batch {
            match op {
                Op::Set { id, delay } => {
                    ctx.set_timer(Duration::from_micros(delay), TimerId(id));
                }
                Op::Cancel { id } => ctx.cancel_timer(TimerId(id)),
                Op::CancelReset { id, delay } => {
                    ctx.cancel_timer(TimerId(id));
                    ctx.set_timer(Duration::from_micros(delay), TimerId(id));
                }
                Op::Send { byte } => ctx.send(self.peer, vec![byte]),
            }
        }
        // Keep the script moving even when every scripted timer was
        // cancelled: a tick with a batch-dependent (but deterministic)
        // delay re-enters `step` until the script is exhausted.
        self.batch += 1;
        if !self.script.is_empty() {
            ctx.set_timer(Duration::from_micros(1 + (self.batch * 13) % 97), TICK);
        }
    }
}

impl Process for Driver {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        self.log
            .lock()
            .unwrap()
            .push(format!("start {:?}", ctx.now()));
        self.step(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, id: TimerId) {
        self.log
            .lock()
            .unwrap()
            .push(format!("timer {:?} {:?}", ctx.now(), id));
        self.step(ctx);
    }

    fn on_message(&mut self, ctx: &mut Context<'_>, from: PartId, payload: Payload) {
        self.log
            .lock()
            .unwrap()
            .push(format!("msg {:?} {from:?} {:?}", ctx.now(), &payload[..]));
        self.step(ctx);
    }
}

/// The peer: logs arrivals and echoes even bytes back once.
struct EchoPeer {
    driver: PartId,
    log: Arc<Mutex<Vec<String>>>,
}

impl Process for EchoPeer {
    fn on_message(&mut self, ctx: &mut Context<'_>, from: PartId, payload: Payload) {
        self.log
            .lock()
            .unwrap()
            .push(format!("peer {:?} {from:?} {:?}", ctx.now(), &payload[..]));
        if payload.first().is_some_and(|b| b % 2 == 0) {
            ctx.send(self.driver, vec![payload[0] + 1]);
        }
    }
}

/// Runs the scripted workload on one backend; returns the handler log and
/// the per-slice report debug strings.
fn run_script(
    backend: QueueBackend,
    script: &[Vec<Op>],
    slices: &[u64],
) -> (Vec<String>, Vec<String>) {
    let log = Arc::new(Mutex::new(Vec::new()));
    let driver = PartId::new(1);
    let peer = PartId::new(2);
    let mut sim = Simulator::new(
        SimConfig::new(0xFEED)
            .default_link(LinkConfig::lan())
            .queue_backend(backend),
    );
    sim.add_process(
        driver,
        Box::new(Driver {
            peer,
            script: script.iter().cloned().collect(),
            batch: 0,
            log: Arc::clone(&log),
        }),
    )
    .unwrap();
    sim.add_process(
        peer,
        Box::new(EchoPeer {
            driver,
            log: Arc::clone(&log),
        }),
    )
    .unwrap();
    let mut reports = Vec::new();
    for &cap in slices {
        let report = sim
            .run_to_quiescence(Duration::from_micros(cap))
            .expect("processes registered");
        reports.push(format!("{report:?}"));
    }
    // Final slice long enough to drain even past-the-horizon timers.
    let report = sim
        .run_to_quiescence(Duration::from_secs(1 << 22))
        .expect("processes registered");
    assert!(report.is_quiescent(), "final slice must drain the queue");
    reports.push(format!("{report:?}"));
    let events = log.lock().unwrap().clone();
    (events, reports)
}

/// Asserts both backends produce byte-identical observables for `script`.
fn assert_backends_agree(script: &[Vec<Op>], slices: &[u64]) {
    let (wheel_log, wheel_reports) = run_script(QueueBackend::Wheel, script, slices);
    let (heap_log, heap_reports) = run_script(QueueBackend::Heap, script, slices);
    assert_eq!(wheel_log, heap_log, "handler streams diverged");
    assert_eq!(wheel_reports, heap_reports, "reports diverged");
}

/// Decodes the raw proptest tuples into op batches.
fn decode(raw: &[(u8, u64, u64, u8)]) -> Vec<Vec<Op>> {
    raw.chunks(2)
        .map(|chunk| {
            chunk
                .iter()
                .map(|&(kind, id, delay, byte)| match kind {
                    0..=4 => Op::Set { id, delay },
                    5..=6 => Op::Cancel { id },
                    7..=8 => Op::CancelReset { id, delay },
                    _ => Op::Send { byte },
                })
                .collect()
        })
        .collect()
}

/// Delay distribution rich in edge cases: same-instant ties, level
/// boundaries of the wheel's 64-slot geometry, generic short delays, and
/// far-future values beyond the wheel horizon (overflow list).
fn delay_strategy() -> impl Strategy<Value = u64> {
    prop_oneof![
        Just(0u64),
        0u64..4,
        60u64..70,
        4_090u64..4_102,
        1u64..50_000,
        (1u64 << 36) - 3..(1u64 << 36) + 3,
        (1u64 << 37)..(1u64 << 37) + 1_000,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary schedule/cancel/re-arm/send interleavings, run in one
    /// slice plus the drain slice.
    #[test]
    fn backends_agree_on_arbitrary_scripts(
        raw in proptest::collection::vec(
            (0u8..10, 0u64..6, delay_strategy(), 0u8..250),
            0..40,
        )
    ) {
        assert_backends_agree(&decode(&raw), &[500_000]);
    }

    /// Dense same-instant traffic: tiny delays force heavy `(at, seq)`
    /// tie-breaking, and short run slices force deadline push-back.
    #[test]
    fn backends_agree_on_dense_ties_and_slices(
        raw in proptest::collection::vec(
            (0u8..10, 0u64..3, 0u64..3, 0u8..250),
            0..60,
        ),
        slices in proptest::collection::vec(1u64..40, 0..6),
    ) {
        assert_backends_agree(&decode(&raw), &slices);
    }
}

/// Deterministic pin: a timer cancelled and re-armed at the same instant
/// fires exactly once, identically on both backends (the stale-generation
/// drop the oracle's `CancelReset` op exercises in bulk).
#[test]
fn cancel_reset_same_instant_pins_semantics() {
    let script = vec![vec![
        Op::Set { id: 1, delay: 500 },
        Op::CancelReset { id: 1, delay: 500 },
    ]];
    assert_backends_agree(&script, &[250, 1_000]);
}
