//! The thread-local recording context the `obs_*!` macro sites write to.
//!
//! Each unit of work (sweep cell, benchmark group) installs its own
//! [`Recorder`] with [`with_recorder`]; instrumentation sites anywhere
//! below it on the same thread then record into it through the free
//! functions here. No recorder installed ⇒ every site is a cheap
//! `thread_local` probe and an early return; feature `enabled` off ⇒ the
//! sites don't even compile to that (see the macros in the crate root).
//!
//! Sweep cells run entirely on one worker thread, so a thread-local (not
//! a global registry) is what makes per-cell capture deterministic and
//! `--threads N` output byte-identical to `--threads 1`.

use std::cell::RefCell;

use crate::recorder::Recorder;

thread_local! {
    static CURRENT: RefCell<Option<Recorder>> = const { RefCell::new(None) };
}

/// True when the crate was compiled with feature `enabled`, i.e. the
/// `obs_*!` macro sites are live. `const`, so callers can branch on it
/// with zero cost.
pub const fn sites_enabled() -> bool {
    cfg!(feature = "enabled")
}

/// True when a recorder is currently installed on this thread.
pub fn active() -> bool {
    CURRENT.with(|c| c.borrow().is_some())
}

/// Runs `f` with `recorder` installed as this thread's recording target
/// and returns `f`'s result together with the filled recorder. Nests: a
/// previously installed recorder is saved and restored.
pub fn with_recorder<T>(recorder: Recorder, f: impl FnOnce() -> T) -> (T, Recorder) {
    let previous = CURRENT.with(|c| c.borrow_mut().replace(recorder));
    let result = f();
    let filled = CURRENT.with(|c| {
        let mut slot = c.borrow_mut();
        let filled = slot.take().expect("recorder still installed");
        *slot = previous;
        filled
    });
    (result, filled)
}

/// Merges `other` into this thread's installed recorder, if any; a no-op
/// otherwise. The sharded netsim engine uses this to fold the per-shard
/// worker recorders back into the caller's recorder in shard order, so
/// obs output stays independent of thread scheduling.
pub fn absorb_into_current(other: &Recorder) {
    CURRENT.with(|c| {
        if let Some(r) = c.borrow_mut().as_mut() {
            r.absorb(other);
        }
    });
}

/// Adds `n` to counter `name` on the installed recorder, if any.
pub fn count(name: &'static str, n: u64) {
    CURRENT.with(|c| {
        if let Some(r) = c.borrow_mut().as_mut() {
            r.count(name, n);
        }
    });
}

/// Records `value` into histogram `name` on the installed recorder.
pub fn record(name: &'static str, value: u64) {
    CURRENT.with(|c| {
        if let Some(r) = c.borrow_mut().as_mut() {
            r.record(name, value);
        }
    });
}

/// Records a message transit on link `src → dst`.
pub fn link(src: u64, dst: u64, bytes: u64, latency_us: u64) {
    CURRENT.with(|c| {
        if let Some(r) = c.borrow_mut().as_mut() {
            r.link(src, dst, bytes, latency_us);
        }
    });
}

/// Appends a timeline event/span (virtual time).
pub fn event(name: &'static str, cat: &'static str, tid: u64, ts_us: u64, dur_us: u64) {
    CURRENT.with(|c| {
        if let Some(r) = c.borrow_mut().as_mut() {
            r.event(name, cat, tid, ts_us, dur_us);
        }
    });
}

/// Appends a timeline event/span carrying causal-trace identity
/// (see [`crate::trace`]).
#[allow(clippy::too_many_arguments)]
pub fn event_traced(
    name: &'static str,
    cat: &'static str,
    tid: u64,
    tid2: u64,
    ts_us: u64,
    dur_us: u64,
    trace_id: u64,
    span_id: u64,
    parent_id: u64,
) {
    CURRENT.with(|c| {
        if let Some(r) = c.borrow_mut().as_mut() {
            r.event_traced(
                name, cat, tid, tid2, ts_us, dur_us, trace_id, span_id, parent_id,
            );
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_route_to_the_installed_recorder() {
        assert!(!active());
        let ((), filled) = with_recorder(Recorder::new(), || {
            assert!(active());
            count("hits", 2);
            record("size", 8);
            link(1, 2, 64, 100);
            event("e", "net", 1, 5, 0);
        });
        assert!(!active());
        assert_eq!(filled.counter("hits"), 2);
        assert_eq!(filled.hist("size").unwrap().count, 1);
        assert_eq!(filled.links().len(), 1);
        assert_eq!(filled.events().len(), 1);
    }

    #[test]
    fn uninstalled_sites_are_silent() {
        count("nobody", 1);
        record("nobody", 1);
        let ((), filled) = with_recorder(Recorder::new(), || {});
        assert!(filled.is_empty());
    }

    #[test]
    fn nested_recorders_save_and_restore() {
        let ((), outer) = with_recorder(Recorder::new(), || {
            count("outer", 1);
            let ((), inner) = with_recorder(Recorder::new(), || {
                count("inner", 1);
            });
            assert_eq!(inner.counter("inner"), 1);
            assert_eq!(inner.counter("outer"), 0);
            count("outer", 1);
        });
        assert_eq!(outer.counter("outer"), 2);
        assert_eq!(outer.counter("inner"), 0);
    }
}
