//! A dependency-free streaming JSON writer (and a small flat-object
//! reader for the perf gate).
//!
//! Every machine-readable artifact this workspace emits — `BENCH_*.json`
//! from the hotpath binary, `SWEEP_*.json` from the sweep harness, the
//! obs JSONL/Chrome-trace sinks — goes through [`JsonWriter`] so the
//! byte-level format is defined in exactly one place. Determinism matters
//! here: the sweep golden test asserts that a 4-thread run produces
//! *byte-identical* output to a 1-thread run, so the writer never consults
//! wall clocks, hash-map iteration order, or locale-dependent float
//! formatting.
//!
//! The writer lives in `svckit-obs` (the lowest layer that emits JSON) and
//! is re-exported by `svckit-sweep` for the existing consumers.

/// Streaming JSON writer with comma and indentation management.
///
/// The writer is push-based: callers open containers, emit keys and
/// scalars, and close containers; separators and (in pretty mode)
/// newlines/indentation are inserted automatically. Output is finished
/// with a trailing newline by [`JsonWriter::finish`].
#[derive(Debug)]
pub struct JsonWriter {
    out: String,
    /// One entry per open container: `true` once it has at least one item.
    stack: Vec<bool>,
    after_key: bool,
    pretty: bool,
}

impl JsonWriter {
    /// A pretty-printing writer (two-space indent, one key per line) —
    /// the format of all committed `*.json` artifacts.
    pub fn pretty() -> Self {
        JsonWriter {
            out: String::new(),
            stack: Vec::new(),
            after_key: false,
            pretty: true,
        }
    }

    /// A compact writer (no whitespace), for tests, embedded summaries,
    /// and the one-object-per-line JSONL obs sink.
    pub fn compact() -> Self {
        JsonWriter {
            out: String::new(),
            stack: Vec::new(),
            after_key: false,
            pretty: false,
        }
    }

    fn indent(&mut self) {
        if self.pretty {
            self.out.push('\n');
            for _ in 0..self.stack.len() {
                self.out.push_str("  ");
            }
        }
    }

    /// Separator before a value or nested container in the current spot.
    fn value_sep(&mut self) {
        if self.after_key {
            self.after_key = false;
            return;
        }
        if let Some(has_items) = self.stack.last_mut() {
            if *has_items {
                self.out.push(',');
            }
            *has_items = true;
            self.indent();
        }
    }

    fn push_escaped(&mut self, s: &str) {
        self.out.push('"');
        for c in s.chars() {
            match c {
                '"' => self.out.push_str("\\\""),
                '\\' => self.out.push_str("\\\\"),
                '\n' => self.out.push_str("\\n"),
                '\r' => self.out.push_str("\\r"),
                '\t' => self.out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    self.out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => self.out.push(c),
            }
        }
        self.out.push('"');
    }

    /// Opens an object (`{`).
    pub fn begin_object(&mut self) -> &mut Self {
        self.value_sep();
        self.out.push('{');
        self.stack.push(false);
        self
    }

    /// Closes the innermost object.
    pub fn end_object(&mut self) -> &mut Self {
        let had_items = self.stack.pop().unwrap_or(false);
        if had_items {
            self.indent();
        }
        self.out.push('}');
        self
    }

    /// Opens an array (`[`).
    pub fn begin_array(&mut self) -> &mut Self {
        self.value_sep();
        self.out.push('[');
        self.stack.push(false);
        self
    }

    /// Closes the innermost array.
    pub fn end_array(&mut self) -> &mut Self {
        let had_items = self.stack.pop().unwrap_or(false);
        if had_items {
            self.indent();
        }
        self.out.push(']');
        self
    }

    /// Emits an object key; the next emitted value becomes its value.
    pub fn key(&mut self, k: &str) -> &mut Self {
        if let Some(has_items) = self.stack.last_mut() {
            if *has_items {
                self.out.push(',');
            }
            *has_items = true;
        }
        self.indent();
        self.push_escaped(k);
        self.out.push(':');
        if self.pretty {
            self.out.push(' ');
        }
        self.after_key = true;
        self
    }

    /// Emits a string value.
    pub fn string(&mut self, s: &str) -> &mut Self {
        self.value_sep();
        self.push_escaped(s);
        self
    }

    /// Emits an unsigned integer value.
    pub fn uint(&mut self, v: u64) -> &mut Self {
        self.value_sep();
        self.out.push_str(&v.to_string());
        self
    }

    /// Emits a boolean value.
    pub fn boolean(&mut self, v: bool) -> &mut Self {
        self.value_sep();
        self.out.push_str(if v { "true" } else { "false" });
        self
    }

    /// Emits a float with a fixed number of decimals (deterministic across
    /// runs and platforms). Non-finite values are written as `null`.
    pub fn float(&mut self, v: f64, decimals: usize) -> &mut Self {
        self.value_sep();
        if v.is_finite() {
            self.out.push_str(&format!("{v:.decimals$}"));
        } else {
            self.out.push_str("null");
        }
        self
    }

    /// Terminates the document with a trailing newline and returns it.
    pub fn finish(mut self) -> String {
        debug_assert!(self.stack.is_empty(), "unclosed JSON container");
        self.out.push('\n');
        self.out
    }
}

/// Reads every `"key": number` pair from a *flat* JSON object such as
/// `BENCH_hotpath.json`. Non-numeric values are skipped. This is the
/// perf-gate's baseline reader; it does not aim to be a general parser.
pub fn parse_flat_numbers(text: &str) -> Vec<(String, f64)> {
    let mut pairs = Vec::new();
    let mut rest = text;
    while let Some(start) = rest.find('"') {
        rest = &rest[start + 1..];
        let Some(end) = rest.find('"') else { break };
        let key = &rest[..end];
        rest = &rest[end + 1..];
        let rest_trim = rest.trim_start();
        let Some(after_colon) = rest_trim.strip_prefix(':') else {
            continue;
        };
        let value_text = after_colon.trim_start();
        let num_len = value_text
            .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')))
            .unwrap_or(value_text.len());
        if let Ok(value) = value_text[..num_len].parse::<f64>() {
            pairs.push((key.to_string(), value));
        }
        rest = &value_text[num_len..];
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_object_matches_bench_format() {
        let mut w = JsonWriter::pretty();
        w.begin_object();
        w.key("a/b").float(12.0, 1);
        w.key("c").float(3.5, 1);
        w.end_object();
        assert_eq!(w.finish(), "{\n  \"a/b\": 12.0,\n  \"c\": 3.5\n}\n");
    }

    #[test]
    fn compact_nesting_and_escaping() {
        let mut w = JsonWriter::compact();
        w.begin_object();
        w.key("s").string("a\"b\\c\nd");
        w.key("xs").begin_array().uint(1).uint(2).end_array();
        w.key("e").begin_object().end_object();
        w.key("ok").boolean(true);
        w.end_object();
        assert_eq!(
            w.finish(),
            "{\"s\":\"a\\\"b\\\\c\\nd\",\"xs\":[1,2],\"e\":{},\"ok\":true}\n"
        );
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut w = JsonWriter::compact();
        w.begin_array()
            .float(f64::NAN, 3)
            .float(1.25, 2)
            .end_array();
        assert_eq!(w.finish(), "[null,1.25]\n");
    }

    #[test]
    fn parse_flat_numbers_round_trips_bench_json() {
        let text = "{\n  \"explorer/to_lts\": 33982965.0,\n  \"netsim/burst\": 568317.0\n}\n";
        let pairs = parse_flat_numbers(text);
        assert_eq!(
            pairs,
            vec![
                ("explorer/to_lts".to_string(), 33982965.0),
                ("netsim/burst".to_string(), 568317.0),
            ]
        );
    }

    #[test]
    fn parse_flat_numbers_skips_non_numeric_values() {
        let pairs = parse_flat_numbers("{\"name\": \"text\", \"n\": 4}");
        assert_eq!(pairs, vec![("n".to_string(), 4.0)]);
    }
}
