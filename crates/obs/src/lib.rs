//! # svckit-obs — zero-cost-when-disabled instrumentation
//!
//! The observability layer of the workspace: counters, fixed-bucket
//! histograms, per-link transport statistics, and timeline events/spans
//! stamped with **virtual (simulated) time**, exported through pluggable
//! sinks — an in-memory [`Recorder`], JSONL, and Chrome trace-event JSON
//! loadable in Perfetto.
//!
//! ## The two-gear design
//!
//! - **Feature `enabled` off (the default):** every `obs_*!` macro site
//!   expands to an *unevaluated closure* — the arguments typecheck but no
//!   code runs and nothing is captured. The perfgated
//!   `obs_disabled_overhead` benchmark pins this at ≤ 3% overhead.
//! - **Feature `enabled` on (`--features obs` on `svckit`/`svckit-bench`):**
//!   sites record into the thread-local [`Recorder`] installed by
//!   [`with_recorder`]. No recorder installed ⇒ sites early-return.
//!
//! The feature lives on *this* crate, so downstream crates instrument
//! unconditionally and Cargo's feature unification flips every site in
//! the build at once.
//!
//! ## Determinism
//!
//! Recorders carry virtual time only, store everything in `BTreeMap`s or
//! recording-order `Vec`s, and are installed per worker thread — one per
//! sweep cell — then merged in spec order. Every sink is therefore
//! byte-identical across `--threads` values and across repeated runs of
//! the same seed (golden-tested in `svckit-sweep`, `cmp`'d in CI).
//!
//! ```
//! use svckit_obs::{with_recorder, Recorder};
//!
//! let ((), rec) = with_recorder(Recorder::new(), || {
//!     svckit_obs::obs_count!("demo.hits");
//!     svckit_obs::obs_span!("demo.span", "net", 1, 100, 250);
//! });
//! // With the `enabled` feature off (the default) the sites vanish:
//! assert_eq!(rec.counter("demo.hits"), u64::from(svckit_obs::sites_enabled()));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ctx;
pub mod json;
pub mod recorder;
pub mod stats;
pub mod trace;

pub use ctx::{absorb_into_current, active, sites_enabled, with_recorder};
pub use json::{parse_flat_numbers, JsonWriter};
pub use recorder::{chrome_trace, chrome_trace_canonical, Event, Hist, LinkStat, Recorder};
pub use stats::{LddStats, PorStats, SymStats};
pub use trace::{
    mint_id, percentile_us, sample_keep, trace_trees, RequestBreakdown, SpanNode, TraceCtx,
    TraceTree,
};

/// Adds 1 (or `n`) to a named counter on the installed recorder.
///
/// `obs_count!("net.events")` / `obs_count!("net.bytes", n)`. Compiles to
/// nothing without feature `enabled`.
#[cfg(feature = "enabled")]
#[macro_export]
macro_rules! obs_count {
    ($name:expr) => {
        $crate::ctx::count($name, 1)
    };
    ($name:expr, $n:expr) => {
        $crate::ctx::count($name, $n as u64)
    };
}

/// Adds 1 (or `n`) to a named counter on the installed recorder.
///
/// `obs_count!("net.events")` / `obs_count!("net.bytes", n)`. Compiles to
/// nothing without feature `enabled`.
#[cfg(not(feature = "enabled"))]
#[macro_export]
macro_rules! obs_count {
    ($name:expr) => {{
        let _ = || $name;
    }};
    ($name:expr, $n:expr) => {{
        let _ = || ($name, $n);
    }};
}

/// Records a sample into a named histogram: `obs_record!("net.queue_depth",
/// depth)`. Compiles to nothing without feature `enabled`.
#[cfg(feature = "enabled")]
#[macro_export]
macro_rules! obs_record {
    ($name:expr, $value:expr) => {
        $crate::ctx::record($name, $value as u64)
    };
}

/// Records a sample into a named histogram: `obs_record!("net.queue_depth",
/// depth)`. Compiles to nothing without feature `enabled`.
#[cfg(not(feature = "enabled"))]
#[macro_export]
macro_rules! obs_record {
    ($name:expr, $value:expr) => {{
        let _ = || ($name, $value);
    }};
}

/// Records a completed message transit on a directed link:
/// `obs_link!(src, dst, bytes, latency_us)`. Compiles to nothing without
/// feature `enabled`.
#[cfg(feature = "enabled")]
#[macro_export]
macro_rules! obs_link {
    ($src:expr, $dst:expr, $bytes:expr, $latency_us:expr) => {
        $crate::ctx::link($src as u64, $dst as u64, $bytes as u64, $latency_us as u64)
    };
}

/// Records a completed message transit on a directed link:
/// `obs_link!(src, dst, bytes, latency_us)`. Compiles to nothing without
/// feature `enabled`.
#[cfg(not(feature = "enabled"))]
#[macro_export]
macro_rules! obs_link {
    ($src:expr, $dst:expr, $bytes:expr, $latency_us:expr) => {{
        let _ = || ($src, $dst, $bytes, $latency_us);
    }};
}

/// Appends an instant timeline event at a virtual timestamp:
/// `obs_event!("proto.decode_error", "proto", node, ts_us)` — or, with
/// three extra arguments, a *traced* instant nested under span
/// `parent` of trace `trace`:
/// `obs_event!("mw.dispatch", "mw", node, ts_us, trace, 0, parent)`.
/// Compiles to nothing without feature `enabled`.
#[cfg(feature = "enabled")]
#[macro_export]
macro_rules! obs_event {
    ($name:expr, $cat:expr, $tid:expr, $ts_us:expr) => {
        $crate::ctx::event($name, $cat, $tid as u64, $ts_us as u64, 0)
    };
    ($name:expr, $cat:expr, $tid:expr, $ts_us:expr, $trace:expr, $span:expr, $parent:expr) => {
        $crate::ctx::event_traced(
            $name,
            $cat,
            $tid as u64,
            0,
            $ts_us as u64,
            0,
            $trace as u64,
            $span as u64,
            $parent as u64,
        )
    };
}

/// Appends an instant timeline event at a virtual timestamp:
/// `obs_event!("proto.decode_error", "proto", node, ts_us)` — or, with
/// three extra arguments, a *traced* instant nested under span
/// `parent` of trace `trace`:
/// `obs_event!("mw.dispatch", "mw", node, ts_us, trace, 0, parent)`.
/// Compiles to nothing without feature `enabled`.
#[cfg(not(feature = "enabled"))]
#[macro_export]
macro_rules! obs_event {
    ($name:expr, $cat:expr, $tid:expr, $ts_us:expr) => {{
        let _ = || ($name, $cat, $tid, $ts_us);
    }};
    ($name:expr, $cat:expr, $tid:expr, $ts_us:expr, $trace:expr, $span:expr, $parent:expr) => {{
        let _ = || ($name, $cat, $tid, $ts_us, $trace, $span, $parent);
    }};
}

/// Appends a completed span over virtual time `[start_us, end_us]`:
/// `obs_span!("net.transit", "net", node, depart_us, arrive_us)` — or,
/// with four extra arguments, a *traced* span with its own identity in
/// a request tree (`tid2` is the source track for cross-node spans, 0
/// otherwise):
/// `obs_span!(name, cat, tid, tid2, start_us, end_us, trace, span,
/// parent)`. Compiles to nothing without feature `enabled`.
#[cfg(feature = "enabled")]
#[macro_export]
macro_rules! obs_span {
    ($name:expr, $cat:expr, $tid:expr, $start_us:expr, $end_us:expr) => {{
        let start = $start_us as u64;
        let end = $end_us as u64;
        $crate::ctx::event($name, $cat, $tid as u64, start, end.saturating_sub(start))
    }};
    ($name:expr, $cat:expr, $tid:expr, $tid2:expr, $start_us:expr, $end_us:expr, $trace:expr, $span:expr, $parent:expr) => {{
        let start = $start_us as u64;
        let end = $end_us as u64;
        $crate::ctx::event_traced(
            $name,
            $cat,
            $tid as u64,
            $tid2 as u64,
            start,
            end.saturating_sub(start),
            $trace as u64,
            $span as u64,
            $parent as u64,
        )
    }};
}

/// Appends a completed span over virtual time `[start_us, end_us]`:
/// `obs_span!("net.transit", "net", node, depart_us, arrive_us)` — or,
/// with four extra arguments, a *traced* span with its own identity in
/// a request tree (`tid2` is the source track for cross-node spans, 0
/// otherwise):
/// `obs_span!(name, cat, tid, tid2, start_us, end_us, trace, span,
/// parent)`. Compiles to nothing without feature `enabled`.
#[cfg(not(feature = "enabled"))]
#[macro_export]
macro_rules! obs_span {
    ($name:expr, $cat:expr, $tid:expr, $start_us:expr, $end_us:expr) => {{
        let _ = || ($name, $cat, $tid, $start_us, $end_us);
    }};
    ($name:expr, $cat:expr, $tid:expr, $tid2:expr, $start_us:expr, $end_us:expr, $trace:expr, $span:expr, $parent:expr) => {{
        let _ = || {
            (
                $name, $cat, $tid, $tid2, $start_us, $end_us, $trace, $span, $parent,
            )
        };
    }};
}

#[cfg(test)]
mod tests {
    use crate::{with_recorder, Recorder};

    #[test]
    fn macro_sites_follow_the_feature_gate() {
        let ((), rec) = with_recorder(Recorder::new(), || {
            obs_count!("hits");
            obs_count!("bytes", 64);
            obs_record!("depth", 3);
            obs_link!(1, 2, 100, 250);
            obs_event!("mark", "net", 1, 10);
            obs_span!("span", "net", 1, 10, 30);
        });
        if crate::sites_enabled() {
            assert_eq!(rec.counter("hits"), 1);
            assert_eq!(rec.counter("bytes"), 64);
            assert_eq!(rec.hist("depth").unwrap().count, 1);
            assert_eq!(rec.links().len(), 1);
            assert_eq!(rec.events().len(), 2);
            assert_eq!(rec.events()[1].dur_us, 20);
        } else {
            assert!(rec.is_empty(), "disabled sites must record nothing");
        }
    }

    #[test]
    fn disabled_macro_arguments_are_not_evaluated() {
        // The closure trick: arguments typecheck but never run when the
        // feature is off. With the feature on they do run — count() then
        // observes the side effect exactly once.
        let mut calls = 0u64;
        let mut bump = || {
            calls += 1;
            7u64
        };
        let ((), _rec) = with_recorder(Recorder::new(), || {
            obs_count!("side", bump());
        });
        assert_eq!(calls, u64::from(crate::sites_enabled()));
    }
}
