//! The per-run recorder: counters, fixed-bucket histograms, per-link
//! transport statistics, and a bounded ring of timeline events.
//!
//! One [`Recorder`] captures one unit of work — a sweep cell, a soak
//! cell, one hotpath benchmark iteration group. Recorders are plain data
//! (`Send`, no interior mutability): the executor installs one per worker
//! thread via [`crate::ctx::with_recorder`], collects it afterwards, and
//! merges cell recorders **in spec order**, so every sink below is
//! byte-identical regardless of thread count.
//!
//! All timestamps are *virtual* (simulated) microseconds. Wall-clock time
//! never enters a recorder: it would break the byte-identity the golden
//! tests and CI `cmp` gates pin.

use std::collections::BTreeMap;

use crate::json::JsonWriter;

/// Number of power-of-two histogram buckets: bucket `i` counts values
/// `v` with `2^(i-1) < v <= 2^i` (bucket 0 counts zero).
pub const HIST_BUCKETS: usize = 40;

/// A fixed-bucket power-of-two histogram over `u64` samples.
///
/// Forty log2 buckets cover the full range this workspace produces
/// (virtual microseconds up to ~12 days, byte counts, set sizes); the
/// exact `count/sum/min/max` ride along so means stay precise.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hist {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of all samples (saturating).
    pub sum: u64,
    /// Smallest sample (`u64::MAX` when empty).
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Log2 buckets; see [`HIST_BUCKETS`].
    pub buckets: [u64; HIST_BUCKETS],
}

impl Default for Hist {
    fn default() -> Self {
        Hist {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; HIST_BUCKETS],
        }
    }
}

impl Hist {
    /// Bucket index for a sample: 0 for zero, else `ceil(log2(v)) + 1`
    /// clamped to the last bucket.
    pub fn bucket_of(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            ((64 - (value - 1).leading_zeros()) as usize + 1).min(HIST_BUCKETS - 1)
        }
    }

    /// Upper bound (inclusive) of bucket `i`, for labeling.
    pub fn bucket_bound(i: usize) -> u64 {
        if i == 0 {
            0
        } else {
            1u64.checked_shl((i - 1) as u32).unwrap_or(u64::MAX)
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.buckets[Self::bucket_of(value)] += 1;
    }

    /// Mean sample, or zero when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Merges another histogram into this one.
    pub fn absorb(&mut self, other: &Hist) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
    }

    /// Writes the histogram as one JSON object (count/sum/min/max/mean
    /// plus the non-empty buckets keyed by their inclusive upper bound).
    pub fn write(&self, w: &mut JsonWriter) {
        w.begin_object();
        w.key("count").uint(self.count);
        w.key("sum").uint(self.sum);
        w.key("min")
            .uint(if self.count == 0 { 0 } else { self.min });
        w.key("max").uint(self.max);
        w.key("mean").float(self.mean(), 3);
        w.key("buckets").begin_object();
        for (i, &n) in self.buckets.iter().enumerate() {
            if n > 0 {
                w.key(&format!("le_{}", Self::bucket_bound(i))).uint(n);
            }
        }
        w.end_object();
        w.end_object();
    }
}

/// Transport statistics for one directed link (`src → dst` node ids).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LinkStat {
    /// Messages that completed transit on this link.
    pub messages: u64,
    /// Payload bytes carried.
    pub bytes: u64,
    /// Transit latency distribution (virtual µs).
    pub latency: Hist,
}

/// One timeline entry: an instant event (`dur_us == 0`) or a completed
/// span, stamped with *virtual* time.
///
/// The three trace fields are all zero on untraced events; a nonzero
/// `trace_id` makes the entry part of a causal request tree (see
/// [`crate::trace`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Site name (static, so recording never allocates for names).
    pub name: &'static str,
    /// Category (layer): `net`, `proto`, `mw`, `lts`, `app`, `trace`.
    pub cat: &'static str,
    /// Track id — the node/entity the event belongs to.
    pub tid: u64,
    /// Second track for cross-node spans (the *source* node of a link
    /// transit, powering Chrome flow arrows); 0 otherwise.
    pub tid2: u64,
    /// Virtual start time, microseconds.
    pub ts_us: u64,
    /// Virtual duration, microseconds (0 = instant event).
    pub dur_us: u64,
    /// Causal trace this event belongs to (0 = untraced).
    pub trace_id: u64,
    /// This span's id (0 for instants, which have no identity).
    pub span_id: u64,
    /// Parent span id (0 on root markers and untraced events).
    pub parent_id: u64,
}

/// Default timeline capacity per recorder; excess events are counted in
/// [`Recorder::events_dropped`] instead of growing without bound.
pub const DEFAULT_EVENT_CAPACITY: usize = 65_536;

/// Captures one unit of work's observations. See the module docs.
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    counters: BTreeMap<&'static str, u64>,
    hists: BTreeMap<&'static str, Hist>,
    links: BTreeMap<(u64, u64), LinkStat>,
    events: Vec<Event>,
    events_seen: u64,
    events_sampled_out: u64,
    events_dropped: u64,
    sample_every: u64,
    capacity: usize,
}

impl Recorder {
    /// A recorder with the default timeline capacity.
    pub fn new() -> Self {
        Recorder::with_capacity(DEFAULT_EVENT_CAPACITY)
    }

    /// A recorder holding at most `capacity` timeline events; further
    /// events are dropped (and counted), counters/histograms are not
    /// affected by the bound.
    pub fn with_capacity(capacity: usize) -> Self {
        Recorder {
            capacity,
            ..Recorder::default()
        }
    }

    /// Switches the timeline to 1-in-`every` sampling. `0` and `1` both
    /// mean "keep everything" (the default); sampled-out events are
    /// counted in [`Recorder::events_sampled_out`]. Counters,
    /// histograms, and link statistics are never sampled.
    ///
    /// Untraced events are thinned by their virtual-order index (of
    /// every `every` consecutive calls, the first is kept), so the
    /// timeline stays a uniform sample of the whole run. *Traced*
    /// events (`trace_id != 0`) are instead kept or dropped **per
    /// trace** by [`crate::trace::sample_keep`]: a request tree is
    /// either fully present or fully absent, never split — index
    /// thinning would orphan child spans from their parents and break
    /// every consumer of the tree.
    #[must_use]
    pub fn with_sampling(mut self, every: u64) -> Self {
        self.sample_every = every;
        self
    }

    /// Adds `n` to counter `name`.
    pub fn count(&mut self, name: &'static str, n: u64) {
        *self.counters.entry(name).or_insert(0) += n;
    }

    /// Records `value` into histogram `name`.
    pub fn record(&mut self, name: &'static str, value: u64) {
        self.hists.entry(name).or_default().record(value);
    }

    /// Records one completed message transit on link `src → dst`.
    pub fn link(&mut self, src: u64, dst: u64, bytes: u64, latency_us: u64) {
        let stat = self.links.entry((src, dst)).or_default();
        stat.messages += 1;
        stat.bytes += bytes;
        stat.latency.record(latency_us);
    }

    /// Appends an untraced timeline event (bounded; see
    /// [`Recorder::with_capacity`]).
    pub fn event(
        &mut self,
        name: &'static str,
        cat: &'static str,
        tid: u64,
        ts_us: u64,
        dur_us: u64,
    ) {
        self.event_traced(name, cat, tid, 0, ts_us, dur_us, 0, 0, 0);
    }

    /// Appends a timeline event carrying causal-trace identity. Traced
    /// events sample per `trace_id` (whole request trees kept or
    /// dropped together); untraced events (`trace_id == 0`) thin by
    /// index as before.
    #[allow(clippy::too_many_arguments)]
    pub fn event_traced(
        &mut self,
        name: &'static str,
        cat: &'static str,
        tid: u64,
        tid2: u64,
        ts_us: u64,
        dur_us: u64,
        trace_id: u64,
        span_id: u64,
        parent_id: u64,
    ) {
        self.events_seen += 1;
        let kept = if self.sample_every < 2 {
            true
        } else if trace_id != 0 {
            crate::trace::sample_keep(trace_id, self.sample_every)
        } else {
            (self.events_seen - 1).is_multiple_of(self.sample_every)
        };
        if !kept {
            self.events_sampled_out += 1;
        } else if self.events.len() < self.capacity {
            self.events.push(Event {
                name,
                cat,
                tid,
                tid2,
                ts_us,
                dur_us,
                trace_id,
                span_id,
                parent_id,
            });
        } else {
            self.events_dropped += 1;
        }
    }

    /// Counter value, zero when never touched.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// All counters, name-ordered.
    pub fn counters(&self) -> &BTreeMap<&'static str, u64> {
        &self.counters
    }

    /// Histogram by name, if any sample was recorded.
    pub fn hist(&self, name: &str) -> Option<&Hist> {
        self.hists.get(name)
    }

    /// Per-link statistics, `(src, dst)`-ordered.
    pub fn links(&self) -> &BTreeMap<(u64, u64), LinkStat> {
        &self.links
    }

    /// The captured timeline, in recording order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Timeline events lost to the capacity bound.
    pub fn events_dropped(&self) -> u64 {
        self.events_dropped
    }

    /// Total [`Recorder::event`] calls, kept or not.
    pub fn events_seen(&self) -> u64 {
        self.events_seen
    }

    /// Timeline events thinned out by [`Recorder::with_sampling`].
    pub fn events_sampled_out(&self) -> u64 {
        self.events_sampled_out
    }

    /// True when nothing at all was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.hists.is_empty()
            && self.links.is_empty()
            && self.events.is_empty()
            && self.events_dropped == 0
            && self.events_sampled_out == 0
    }

    /// Merges `other` into `self`: counters/histograms/links add up,
    /// timelines concatenate (still bounded by `self`'s capacity).
    pub fn absorb(&mut self, other: &Recorder) {
        for (&name, &n) in &other.counters {
            self.count(name, n);
        }
        for (&name, hist) in &other.hists {
            self.hists.entry(name).or_default().absorb(hist);
        }
        for (&key, stat) in &other.links {
            let mine = self.links.entry(key).or_default();
            mine.messages += stat.messages;
            mine.bytes += stat.bytes;
            mine.latency.absorb(&stat.latency);
        }
        // Absorbed events were already sampled at the source; only the
        // capacity bound applies here.
        for event in &other.events {
            if self.events.len() < self.capacity {
                self.events.push(event.clone());
            } else {
                self.events_dropped += 1;
            }
        }
        self.events_seen += other.events_seen;
        self.events_sampled_out += other.events_sampled_out;
        self.events_dropped += other.events_dropped;
    }

    /// Writes the aggregate metric block (no timeline) as one JSON
    /// object: counters, histograms, per-link stats, event accounting.
    /// Deterministic: `BTreeMap` ordering plus fixed-decimal floats.
    pub fn write_block(&self, w: &mut JsonWriter) {
        w.begin_object();
        w.key("counters").begin_object();
        for (name, n) in &self.counters {
            w.key(name).uint(*n);
        }
        w.end_object();
        w.key("histograms").begin_object();
        for (name, hist) in &self.hists {
            w.key(name);
            hist.write(w);
        }
        w.end_object();
        w.key("links").begin_array();
        for ((src, dst), stat) in &self.links {
            w.begin_object();
            w.key("src").uint(*src);
            w.key("dst").uint(*dst);
            w.key("messages").uint(stat.messages);
            w.key("bytes").uint(stat.bytes);
            w.key("latency_us");
            stat.latency.write(w);
            w.end_object();
        }
        w.end_array();
        w.key("events").uint(self.events.len() as u64);
        w.key("events_sampled_out").uint(self.events_sampled_out);
        w.key("events_dropped").uint(self.events_dropped);
        w.end_object();
    }

    /// Renders the recorder as JSONL: one compact JSON object per line —
    /// first every timeline event (in virtual-time recording order), then
    /// counters, histograms, and links. `scope` labels the originating
    /// cell/run on every line.
    pub fn jsonl(&self, scope: &str) -> String {
        let mut out = String::new();
        for e in &self.events {
            let mut w = JsonWriter::compact();
            w.begin_object();
            w.key("type").string("event");
            w.key("scope").string(scope);
            w.key("name").string(e.name);
            w.key("cat").string(e.cat);
            w.key("tid").uint(e.tid);
            w.key("ts_us").uint(e.ts_us);
            w.key("dur_us").uint(e.dur_us);
            if e.trace_id != 0 {
                w.key("trace").uint(e.trace_id);
                w.key("span").uint(e.span_id);
                w.key("parent").uint(e.parent_id);
                if e.tid2 != 0 {
                    w.key("src").uint(e.tid2);
                }
            }
            w.end_object();
            out.push_str(&w.finish());
        }
        for (name, n) in &self.counters {
            let mut w = JsonWriter::compact();
            w.begin_object();
            w.key("type").string("counter");
            w.key("scope").string(scope);
            w.key("name").string(name);
            w.key("value").uint(*n);
            w.end_object();
            out.push_str(&w.finish());
        }
        for (name, hist) in &self.hists {
            let mut w = JsonWriter::compact();
            w.begin_object();
            w.key("type").string("hist");
            w.key("scope").string(scope);
            w.key("name").string(name);
            w.key("hist");
            hist.write(&mut w);
            w.end_object();
            out.push_str(&w.finish());
        }
        for ((src, dst), stat) in &self.links {
            let mut w = JsonWriter::compact();
            w.begin_object();
            w.key("type").string("link");
            w.key("scope").string(scope);
            w.key("src").uint(*src);
            w.key("dst").uint(*dst);
            w.key("messages").uint(stat.messages);
            w.key("bytes").uint(stat.bytes);
            w.key("latency_mean_us").float(stat.latency.mean(), 3);
            w.end_object();
            out.push_str(&w.finish());
        }
        if self.events_sampled_out > 0 {
            let mut w = JsonWriter::compact();
            w.begin_object();
            w.key("type").string("sampled");
            w.key("scope").string(scope);
            w.key("every").uint(self.sample_every);
            w.key("events").uint(self.events_sampled_out);
            w.end_object();
            out.push_str(&w.finish());
        }
        if self.events_dropped > 0 {
            let mut w = JsonWriter::compact();
            w.begin_object();
            w.key("type").string("dropped");
            w.key("scope").string(scope);
            w.key("events").uint(self.events_dropped);
            w.end_object();
            out.push_str(&w.finish());
        }
        out
    }

    /// Appends this recorder's timeline to an open Chrome `traceEvents`
    /// array: a `process_name` metadata record, one complete (`ph: "X"`)
    /// or instant (`ph: "i"`) event per timeline entry, and one final
    /// counter (`ph: "C"`) sample per counter. `pid` identifies the
    /// cell/run; `tid` is the originating node. Loadable in Perfetto /
    /// `chrome://tracing`.
    ///
    /// Traced events additionally carry their `trace/span/parent` ids in
    /// `args`, and every traced *cross-node* span (a link transit, where
    /// `tid2` names the source node) emits a flow-event pair (`ph: "s"`
    /// on the source track, `ph: "f"` on the destination track, bound by
    /// the span id) so Perfetto draws the causal arrows between nodes.
    /// Name and category strings both pass through [`JsonWriter::string`]
    /// escaping, like every other string this sink writes.
    pub fn write_chrome_events(&self, w: &mut JsonWriter, pid: u64, process_name: &str) {
        let order: Vec<&Event> = self.events.iter().collect();
        self.write_chrome_events_in(w, pid, process_name, &order);
    }

    /// [`Recorder::write_chrome_events`] with the timeline sorted into
    /// canonical `(ts, tid, trace, span, …)` order first. The sharded
    /// engine absorbs per-shard recorders in *shard* order, so the raw
    /// timeline interleaving differs between `--shards` values even
    /// when the event multiset is identical; sorting erases exactly
    /// that, which is what makes the trace-output goldens byte-
    /// identical across shard counts.
    pub fn write_chrome_events_canonical(&self, w: &mut JsonWriter, pid: u64, process_name: &str) {
        let mut order: Vec<&Event> = self.events.iter().collect();
        order.sort_by_key(|e| {
            (
                e.ts_us,
                e.tid,
                e.trace_id,
                e.span_id,
                e.parent_id,
                e.name,
                e.cat,
                e.dur_us,
                e.tid2,
            )
        });
        self.write_chrome_events_in(w, pid, process_name, &order);
    }

    fn write_chrome_events_in(
        &self,
        w: &mut JsonWriter,
        pid: u64,
        process_name: &str,
        order: &[&Event],
    ) {
        w.begin_object();
        w.key("name").string("process_name");
        w.key("ph").string("M");
        w.key("pid").uint(pid);
        w.key("tid").uint(0);
        w.key("args").begin_object();
        w.key("name").string(process_name);
        w.end_object();
        w.end_object();
        let mut end_ts = 0u64;
        for e in order {
            end_ts = end_ts.max(e.ts_us + e.dur_us);
            w.begin_object();
            w.key("name").string(e.name);
            w.key("cat").string(e.cat);
            if e.dur_us > 0 {
                w.key("ph").string("X");
            } else {
                w.key("ph").string("i");
                w.key("s").string("t");
            }
            w.key("pid").uint(pid);
            w.key("tid").uint(e.tid);
            w.key("ts").uint(e.ts_us);
            if e.dur_us > 0 {
                w.key("dur").uint(e.dur_us);
            }
            if e.trace_id != 0 {
                w.key("args").begin_object();
                w.key("trace").uint(e.trace_id);
                w.key("span").uint(e.span_id);
                w.key("parent").uint(e.parent_id);
                w.end_object();
            }
            w.end_object();
            // Cross-node causality: a flow arrow from the sender's track
            // at departure to the receiver's track at arrival.
            if e.trace_id != 0 && e.dur_us > 0 && e.tid2 != 0 && e.tid2 != e.tid {
                w.begin_object();
                w.key("name").string(e.name);
                w.key("cat").string(e.cat);
                w.key("ph").string("s");
                w.key("id").uint(e.span_id);
                w.key("pid").uint(pid);
                w.key("tid").uint(e.tid2);
                w.key("ts").uint(e.ts_us);
                w.end_object();
                w.begin_object();
                w.key("name").string(e.name);
                w.key("cat").string(e.cat);
                w.key("ph").string("f");
                w.key("bp").string("e");
                w.key("id").uint(e.span_id);
                w.key("pid").uint(pid);
                w.key("tid").uint(e.tid);
                w.key("ts").uint(e.ts_us + e.dur_us);
                w.end_object();
            }
        }
        for (name, n) in &self.counters {
            w.begin_object();
            w.key("name").string(name);
            w.key("ph").string("C");
            w.key("pid").uint(pid);
            w.key("tid").uint(0);
            w.key("ts").uint(end_ts);
            w.key("args").begin_object();
            w.key("value").uint(*n);
            w.end_object();
            w.end_object();
        }
    }
}

/// Writes a full Chrome trace document from `(pid, process_name,
/// recorder)` triples — the shape Perfetto's JSON importer expects.
pub fn chrome_trace<'a>(parts: impl IntoIterator<Item = (u64, &'a str, &'a Recorder)>) -> String {
    let mut w = JsonWriter::pretty();
    w.begin_object();
    w.key("displayTimeUnit").string("ms");
    w.key("traceEvents").begin_array();
    for (pid, name, recorder) in parts {
        recorder.write_chrome_events(&mut w, pid, name);
    }
    w.end_array();
    w.end_object();
    w.finish()
}

/// [`chrome_trace`] with every recorder's timeline in canonical order
/// (see [`Recorder::write_chrome_events_canonical`]): the `--trace-out`
/// sink, byte-identical across `--threads` *and* `--shards`.
pub fn chrome_trace_canonical<'a>(
    parts: impl IntoIterator<Item = (u64, &'a str, &'a Recorder)>,
) -> String {
    let mut w = JsonWriter::pretty();
    w.begin_object();
    w.key("displayTimeUnit").string("ms");
    w.key("traceEvents").begin_array();
    for (pid, name, recorder) in parts {
        recorder.write_chrome_events_canonical(&mut w, pid, name);
    }
    w.end_array();
    w.end_object();
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hist_buckets_are_log2() {
        assert_eq!(Hist::bucket_of(0), 0);
        assert_eq!(Hist::bucket_of(1), 1);
        assert_eq!(Hist::bucket_of(2), 2);
        assert_eq!(Hist::bucket_of(3), 3);
        assert_eq!(Hist::bucket_of(4), 3);
        assert_eq!(Hist::bucket_of(5), 4);
        assert_eq!(Hist::bucket_of(u64::MAX), HIST_BUCKETS - 1);
        assert_eq!(Hist::bucket_bound(0), 0);
        assert_eq!(Hist::bucket_bound(1), 1);
        assert_eq!(Hist::bucket_bound(3), 4);
    }

    #[test]
    fn hist_tracks_count_sum_min_max() {
        let mut h = Hist::default();
        for v in [5, 1, 9] {
            h.record(v);
        }
        assert_eq!(h.count, 3);
        assert_eq!(h.sum, 15);
        assert_eq!(h.min, 1);
        assert_eq!(h.max, 9);
        assert!((h.mean() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn recorder_counts_and_merges() {
        let mut a = Recorder::new();
        a.count("pdus", 2);
        a.record("lat", 10);
        a.link(1, 2, 100, 250);
        a.event("transit", "net", 2, 0, 250);
        let mut b = Recorder::new();
        b.count("pdus", 3);
        b.record("lat", 30);
        b.link(1, 2, 50, 150);
        a.absorb(&b);
        assert_eq!(a.counter("pdus"), 5);
        assert_eq!(a.hist("lat").unwrap().count, 2);
        let link = &a.links()[&(1, 2)];
        assert_eq!(link.messages, 2);
        assert_eq!(link.bytes, 150);
        assert_eq!(a.events().len(), 1);
        assert!(!a.is_empty());
        assert!(Recorder::new().is_empty());
    }

    #[test]
    fn sampling_thins_the_timeline_uniformly() {
        let mut r = Recorder::new().with_sampling(3);
        for i in 0..10 {
            r.event("e", "net", 0, i, 0);
        }
        // Kept: event indices 0, 3, 6, 9.
        assert_eq!(r.events().len(), 4);
        assert_eq!(r.events()[1].ts_us, 3);
        assert_eq!(r.events_seen(), 10);
        assert_eq!(r.events_sampled_out(), 6);
        assert_eq!(r.events_dropped(), 0);
        let text = r.jsonl("s");
        assert!(text.contains("\"type\":\"sampled\""));
        assert!(text.contains("\"every\":3"));
        assert!(!r.is_empty());
    }

    #[test]
    fn sampling_never_splits_a_trace_tree() {
        // Regression: index-based thinning used to apply to traced
        // events too, orphaning children from parents. Per-trace
        // sampling keeps or drops whole requests.
        let every = 3u64;
        let traces: Vec<u64> = (1..=64u64).map(|n| crate::trace::mint_id(n, 1)).collect();
        let mut r = Recorder::new().with_sampling(every);
        for &t in &traces {
            // Three events per trace, interleaved would-be-thinned.
            r.event_traced("trace.begin", "trace", 1, 0, 10, 0, t, t ^ 2, 0);
            r.event_traced("net.transit", "net", 2, 1, 10, 5, t, t ^ 4, t ^ 2);
            r.event_traced("trace.end", "trace", 1, 0, 15, 0, t, t ^ 2, 0);
        }
        let kept: Vec<u64> = traces
            .iter()
            .copied()
            .filter(|&t| crate::trace::sample_keep(t, every))
            .collect();
        assert!(!kept.is_empty() && kept.len() < traces.len());
        // Every surviving trace is complete (3 events), every sampled
        // trace is fully gone, and the accounting adds up.
        for &t in &traces {
            let n = r.events().iter().filter(|e| e.trace_id == t).count();
            assert_eq!(n, if kept.contains(&t) { 3 } else { 0 });
        }
        assert_eq!(r.events_seen(), traces.len() as u64 * 3);
        assert_eq!(
            r.events_sampled_out(),
            (traces.len() - kept.len()) as u64 * 3
        );
        assert_eq!(r.events_dropped(), 0);
    }

    #[test]
    fn untraced_sampling_still_thins_by_index() {
        // The pre-trace behaviour must survive for flat timelines.
        let mut r = Recorder::new().with_sampling(4);
        for i in 0..8 {
            r.event("e", "net", 0, i, 0);
        }
        assert_eq!(r.events().len(), 2);
        assert_eq!(r.events()[1].ts_us, 4);
    }

    #[test]
    fn chrome_sink_escapes_malformed_names_and_categories() {
        // Round-trip: a hostile name/category/scope must come out fully
        // escaped in both sinks — no raw quote, backslash, or control
        // byte may survive into the JSON text.
        let name: &'static str = "bad\"name\\with\ncontrol";
        let cat: &'static str = "cat\"egory\t";
        let mut r = Recorder::new();
        r.event(name, cat, 1, 10, 5);
        let chrome = chrome_trace([(1, "cell \"x\"\\", &r)]);
        let jsonl = r.jsonl("scope\"s\\");
        for text in [chrome.as_str(), jsonl.as_str()] {
            assert!(text.contains("bad\\\"name\\\\with\\ncontrol"), "{text}");
            assert!(text.contains("cat\\\"egory\\t"), "{text}");
            assert!(!text.contains('\t'), "raw tab leaked");
            // Structural check: outside escapes, quotes must balance.
            let mut in_string = false;
            let mut escaped = false;
            for c in text.chars() {
                if escaped {
                    escaped = false;
                } else if c == '\\' {
                    escaped = true;
                } else if c == '"' {
                    in_string = !in_string;
                } else if (c == '\n' || c == '\t') && in_string {
                    panic!("raw control character inside a JSON string");
                }
            }
            assert!(!in_string, "unbalanced quotes in {text}");
        }
    }

    #[test]
    fn traced_spans_emit_flow_event_pairs() {
        let mut r = Recorder::new();
        r.event_traced("net.transit", "net", 2, 1, 100, 50, 7, 11, 10);
        r.event_traced("mw.dispatch", "mw", 2, 0, 150, 0, 7, 0, 11);
        let text = chrome_trace([(3, "cell", &r)]);
        assert!(text.contains("\"ph\": \"s\""), "{text}");
        assert!(text.contains("\"ph\": \"f\""), "{text}");
        assert!(text.contains("\"bp\": \"e\""), "{text}");
        assert!(text.contains("\"id\": 11"), "{text}");
        assert!(text.contains("\"trace\": 7"), "{text}");
        // The instant has no second track, so exactly one s/f pair.
        assert_eq!(text.matches("\"ph\": \"s\"").count(), 1);
        assert_eq!(text.matches("\"ph\": \"f\"").count(), 1);
    }

    #[test]
    fn canonical_chrome_is_order_independent() {
        let mut a = Recorder::new();
        a.event_traced("net.transit", "net", 2, 1, 100, 50, 7, 11, 10);
        a.event_traced("net.transit", "net", 3, 1, 90, 50, 7, 12, 10);
        let mut b = Recorder::new();
        b.event_traced("net.transit", "net", 3, 1, 90, 50, 7, 12, 10);
        b.event_traced("net.transit", "net", 2, 1, 100, 50, 7, 11, 10);
        assert_ne!(
            chrome_trace([(1, "c", &a)]),
            chrome_trace([(1, "c", &b)]),
            "raw order differs by construction"
        );
        assert_eq!(
            chrome_trace_canonical([(1, "c", &a)]),
            chrome_trace_canonical([(1, "c", &b)])
        );
    }

    #[test]
    fn event_capacity_is_bounded() {
        let mut r = Recorder::with_capacity(2);
        for i in 0..5 {
            r.event("e", "net", 0, i, 0);
        }
        assert_eq!(r.events().len(), 2);
        assert_eq!(r.events_dropped(), 3);
    }

    #[test]
    fn block_is_deterministic_json() {
        let mut r = Recorder::new();
        r.count("b", 1);
        r.count("a", 2);
        r.record("h", 7);
        let mut w = JsonWriter::compact();
        r.write_block(&mut w);
        let text = w.finish();
        // BTreeMap ordering: "a" before "b" regardless of insertion order.
        assert!(text.find("\"a\":2").unwrap() < text.find("\"b\":1").unwrap());
        assert!(text.contains("\"le_8\":1"));
        assert!(text.contains("\"events\":0"));
    }

    #[test]
    fn jsonl_is_one_object_per_line() {
        let mut r = Recorder::new();
        r.event("transit", "net", 3, 10, 5);
        r.count("msgs", 1);
        let text = r.jsonl("cell-0");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"type\":\"event\""));
        assert!(lines[0].contains("\"ts_us\":10"));
        assert!(lines[1].starts_with("{\"type\":\"counter\""));
        assert!(lines.iter().all(|l| l.contains("\"scope\":\"cell-0\"")));
    }

    #[test]
    fn chrome_trace_has_expected_shape() {
        let mut r = Recorder::new();
        r.event("span", "net", 1, 100, 50);
        r.event("mark", "proto", 2, 160, 0);
        r.count("pdus", 4);
        let text = chrome_trace([(7, "cell cell-7", &r)]);
        assert!(text.contains("\"traceEvents\": ["));
        assert!(text.contains("\"ph\": \"M\""));
        assert!(text.contains("\"ph\": \"X\""));
        assert!(text.contains("\"ph\": \"i\""));
        assert!(text.contains("\"ph\": \"C\""));
        assert!(text.contains("\"dur\": 50"));
        assert!(text.contains("\"pid\": 7"));
    }
}
