//! The shared state-space-reduction statistics schemas.
//!
//! Both `svckit-analyze` (in `ANALYZE_report.json`) and the explorer
//! benchmarks (in `BENCH_hotpath.json`'s sidecar) report partial-order
//! ([`PorStats`]) and symmetry-quotient ([`SymStats`]) work through these
//! structs, so the two artifacts stay field-compatible and a single
//! reader can compare analyzer runs against benchmark runs.

use crate::json::JsonWriter;

/// Full-vs-reduced exploration statistics for one (service, universe).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PorStats {
    /// States visited without reduction.
    pub full_states: u64,
    /// Transitions taken without reduction.
    pub full_transitions: u64,
    /// States visited with ample-set reduction.
    pub reduced_states: u64,
    /// Transitions taken with ample-set reduction.
    pub reduced_transitions: u64,
    /// Ample-set size histogram from the reduced run: `ample_hist[k]` =
    /// number of state expansions whose ample (or full enabled) set had
    /// `k` events. Index 0 is unused (deadlock states are not expanded).
    pub ample_hist: Vec<u64>,
}

impl PorStats {
    /// `full_states / reduced_states` — how much smaller reduction made
    /// the search. 1.0 when either side is unknown.
    pub fn reduction_ratio(&self) -> f64 {
        if self.full_states == 0 || self.reduced_states == 0 {
            1.0
        } else {
            self.full_states as f64 / self.reduced_states as f64
        }
    }

    /// Mean ample-set size over all expansions, or zero when empty.
    pub fn mean_ample(&self) -> f64 {
        let expansions: u64 = self.ample_hist.iter().sum();
        if expansions == 0 {
            return 0.0;
        }
        let weighted: u64 = self
            .ample_hist
            .iter()
            .enumerate()
            .map(|(size, &n)| size as u64 * n)
            .sum();
        weighted as f64 / expansions as f64
    }

    /// Writes the stats as one JSON object — the shared schema:
    ///
    /// ```json
    /// {
    ///   "full_states": ..., "full_transitions": ...,
    ///   "reduced_states": ..., "reduced_transitions": ...,
    ///   "reduction_ratio": ..., "ample_mean": ...,
    ///   "ample_hist": { "1": ..., "2": ... }
    /// }
    /// ```
    pub fn write(&self, w: &mut JsonWriter) {
        w.begin_object();
        w.key("full_states").uint(self.full_states);
        w.key("full_transitions").uint(self.full_transitions);
        w.key("reduced_states").uint(self.reduced_states);
        w.key("reduced_transitions").uint(self.reduced_transitions);
        w.key("reduction_ratio").float(self.reduction_ratio(), 3);
        w.key("ample_mean").float(self.mean_ample(), 3);
        w.key("ample_hist").begin_object();
        for (size, &n) in self.ample_hist.iter().enumerate() {
            if n > 0 {
                w.key(&size.to_string()).uint(n);
            }
        }
        w.end_object();
        w.end_object();
    }
}

/// Symmetry-quotient statistics for one (service, universe): the
/// unreduced run next to the quotient run at the same reduction setting,
/// plus the quotient's orbit accounting. Shares the artifact conventions
/// of [`PorStats`] — `svckit-analyze` reports one block per target and the
/// benchmarks reuse the same schema.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SymStats {
    /// States visited without symmetry (same reduction setting).
    pub full_states: u64,
    /// Transitions taken without symmetry.
    pub full_transitions: u64,
    /// Whether the unreduced run hit its state bound (the quotient run
    /// may still have completed — that asymmetry is the point).
    pub full_truncated: bool,
    /// Orbit representatives visited with symmetry on.
    pub quotient_states: u64,
    /// Transitions taken with symmetry on.
    pub quotient_transitions: u64,
    /// Distinct orbits stored (equals `quotient_states`).
    pub orbit_count: u64,
    /// Non-identity canonicalizations during the quotient search.
    pub canon_hits: u64,
    /// Concrete states covered by stored representatives but never
    /// stored: Σ (orbit size − 1).
    pub states_saved: u64,
}

impl SymStats {
    /// `full_states / quotient_states` — how much smaller the quotient
    /// made the search. 1.0 when either side is unknown.
    pub fn reduction_ratio(&self) -> f64 {
        if self.full_states == 0 || self.quotient_states == 0 {
            1.0
        } else {
            self.full_states as f64 / self.quotient_states as f64
        }
    }

    /// Writes the stats as one JSON object:
    ///
    /// ```json
    /// {
    ///   "full_states": ..., "full_transitions": ..., "full_truncated": ...,
    ///   "quotient_states": ..., "quotient_transitions": ...,
    ///   "orbit_count": ..., "canon_hits": ..., "states_saved": ...,
    ///   "reduction_ratio": ...
    /// }
    /// ```
    pub fn write(&self, w: &mut JsonWriter) {
        w.begin_object();
        w.key("full_states").uint(self.full_states);
        w.key("full_transitions").uint(self.full_transitions);
        w.key("full_truncated").boolean(self.full_truncated);
        w.key("quotient_states").uint(self.quotient_states);
        w.key("quotient_transitions")
            .uint(self.quotient_transitions);
        w.key("orbit_count").uint(self.orbit_count);
        w.key("canon_hits").uint(self.canon_hits);
        w.key("states_saved").uint(self.states_saved);
        w.key("reduction_ratio").float(self.reduction_ratio(), 3);
        w.end_object();
    }
}

/// Symbolic-backend statistics for one (service, universe): the reached
/// state/transition counts next to the size of the decision diagrams that
/// carried them. Shares the artifact conventions of [`PorStats`] and
/// [`SymStats`] — `svckit-analyze` reports one block per target under
/// `--backend symbolic` and the explorer benchmarks reuse the same schema
/// (`BENCH_hotpath.ldd.json`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LddStats {
    /// Concrete states the symbolic search reached (never truncated).
    pub states: u64,
    /// Concrete transitions of the reached graph.
    pub transitions: u64,
    /// Nodes in the final reached-set diagram.
    pub ldd_nodes: u64,
    /// High-water unique-table size: every node interned over the search.
    pub peak_nodes: u64,
    /// Operation-cache hits (set ops, relational products, satcounts).
    pub cache_hits: u64,
}

impl LddStats {
    /// `states / ldd_nodes` — how many concrete states each diagram node
    /// carried. 1.0 when either side is unknown.
    pub fn compression_ratio(&self) -> f64 {
        if self.states == 0 || self.ldd_nodes == 0 {
            1.0
        } else {
            self.states as f64 / self.ldd_nodes as f64
        }
    }

    /// Writes the stats as one JSON object:
    ///
    /// ```json
    /// {
    ///   "states": ..., "transitions": ...,
    ///   "ldd_nodes": ..., "peak_nodes": ..., "cache_hits": ...,
    ///   "compression_ratio": ...
    /// }
    /// ```
    pub fn write(&self, w: &mut JsonWriter) {
        w.begin_object();
        w.key("states").uint(self.states);
        w.key("transitions").uint(self.transitions);
        w.key("ldd_nodes").uint(self.ldd_nodes);
        w.key("peak_nodes").uint(self.peak_nodes);
        w.key("cache_hits").uint(self.cache_hits);
        w.key("compression_ratio")
            .float(self.compression_ratio(), 3);
        w.end_object();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ldd_ratio_and_schema() {
        let stats = LddStats {
            states: 20_000,
            transitions: 95_000,
            ldd_nodes: 400,
            peak_nodes: 5_200,
            cache_hits: 31_337,
        };
        assert!((stats.compression_ratio() - 50.0).abs() < 1e-9);
        let mut w = JsonWriter::compact();
        stats.write(&mut w);
        assert_eq!(
            w.finish(),
            "{\"states\":20000,\"transitions\":95000,\"ldd_nodes\":400,\
             \"peak_nodes\":5200,\"cache_hits\":31337,\"compression_ratio\":50.000}\n"
        );
        assert!((LddStats::default().compression_ratio() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sym_ratio_and_schema() {
        let stats = SymStats {
            full_states: 9854,
            full_transitions: 23886,
            full_truncated: false,
            quotient_states: 1330,
            quotient_transitions: 3200,
            orbit_count: 1330,
            canon_hits: 4934,
            states_saved: 6385,
        };
        assert!((stats.reduction_ratio() - 9854.0 / 1330.0).abs() < 1e-9);
        let mut w = JsonWriter::compact();
        stats.write(&mut w);
        assert_eq!(
            w.finish(),
            "{\"full_states\":9854,\"full_transitions\":23886,\"full_truncated\":false,\
             \"quotient_states\":1330,\"quotient_transitions\":3200,\"orbit_count\":1330,\
             \"canon_hits\":4934,\"states_saved\":6385,\"reduction_ratio\":7.409}\n"
        );
        assert!((SymStats::default().reduction_ratio() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ratio_and_mean() {
        let stats = PorStats {
            full_states: 100,
            full_transitions: 400,
            reduced_states: 20,
            reduced_transitions: 40,
            ample_hist: vec![0, 6, 2], // 6 singleton ample sets, 2 pairs
        };
        assert!((stats.reduction_ratio() - 5.0).abs() < 1e-9);
        assert!((stats.mean_ample() - 1.25).abs() < 1e-9);
    }

    #[test]
    fn empty_stats_are_neutral() {
        let stats = PorStats::default();
        assert!((stats.reduction_ratio() - 1.0).abs() < 1e-9);
        assert!((stats.mean_ample()).abs() < 1e-9);
    }

    #[test]
    fn json_schema_has_all_fields() {
        let stats = PorStats {
            full_states: 10,
            full_transitions: 12,
            reduced_states: 5,
            reduced_transitions: 6,
            ample_hist: vec![0, 3],
        };
        let mut w = JsonWriter::compact();
        stats.write(&mut w);
        let text = w.finish();
        assert_eq!(
            text,
            "{\"full_states\":10,\"full_transitions\":12,\"reduced_states\":5,\
             \"reduced_transitions\":6,\"reduction_ratio\":2.000,\"ample_mean\":1.000,\
             \"ample_hist\":{\"1\":3}}\n"
        );
    }
}
