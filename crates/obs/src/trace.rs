//! Causal request tracing: trace contexts, deterministic span-id
//! minting, span-tree reconstruction, and the critical-path walker
//! behind `TRACE_summary.json`.
//!
//! A *trace* is the causal closure of one service primitive issued by a
//! user part: the request `request`/`free` indication, every PDU and
//! platform message it triggers, the retransmissions of those messages,
//! and the terminating indication delivered back to a user part. The
//! simulator mints a [`TraceCtx`] at the issuing node ([`mint_id`]),
//! carries it *side-band* on simulator events — never inside wire
//! payloads, so codec goldens stay byte-identical — and stamps every
//! traced timeline [`Event`] with `(trace_id, span_id, parent_id)`.
//!
//! ## Span-tree shape
//!
//! - `trace.begin` / `trace.end` instant markers carry the root span id;
//!   the walker synthesizes the root interval from them (extended to
//!   cover stragglers such as post-completion ACK transits).
//! - Segment spans — `net.queue_wait`, `net.transit`, `net.retransmit`
//!   — parent directly under the root, so the tree is depth two and the
//!   critical-path arithmetic is a flat interval sweep.
//! - Instant events (handler marks, drops, broker deliveries) parent
//!   under the span that delivered them (a transit span or the root).
//!
//! All ids are minted from per-node sequence counters, and a node's
//! dispatch order is independent of how nodes are partitioned into
//! shards, so the same run produces the same ids for every `--shards`
//! value — the property the trace goldens pin.

use std::collections::BTreeMap;

use crate::recorder::Event;

/// Marker name stamped when a user part opens a trace.
pub const TRACE_BEGIN: &str = "trace.begin";
/// Marker name stamped when the terminating indication reaches a user.
pub const TRACE_END: &str = "trace.end";
/// Span name for time a message waits for (and occupies) a
/// bandwidth-limited link before departing.
pub const SPAN_QUEUE_WAIT: &str = "net.queue_wait";
/// Span name for first-transmission link transit.
pub const SPAN_TRANSIT: &str = "net.transit";
/// Span name for link transit of a retransmitted frame.
pub const SPAN_RETRANSMIT: &str = "net.retransmit";

/// The causal context piggybacked side-band on simulator messages and
/// timers.
///
/// `span_id` is the span the receiver is being delivered *under* (a
/// transit span, or the root right after minting); `parent_id` is the
/// trace's root span, which every segment span parents to. The struct
/// is `Copy` and three words — cheap enough to ride on every event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceCtx {
    /// Identity of the whole request tree.
    pub trace_id: u64,
    /// The span this hop is nested under.
    pub span_id: u64,
    /// The root span of the trace (segment spans parent here).
    pub parent_id: u64,
}

impl TraceCtx {
    /// The context minted at the issuing node: the root span is both the
    /// current span and the parent for everything below it.
    pub fn root(trace_id: u64, root_span: u64) -> Self {
        TraceCtx {
            trace_id,
            span_id: root_span,
            parent_id: root_span,
        }
    }

    /// The continuation carried by a transit hop: same trace and root,
    /// but the delivered span becomes the nesting target for handler
    /// instants on the receiving node.
    pub fn hop(self, span_id: u64) -> Self {
        TraceCtx { span_id, ..self }
    }

    /// The context captured by a timer: the firing handler runs long
    /// after the delivering span closed, so instants re-parent to the
    /// root, which always covers them.
    pub fn timer_carry(self) -> Self {
        TraceCtx {
            span_id: self.parent_id,
            ..self
        }
    }
}

/// Mints a trace/span id from a node id and that node's private
/// sequence counter (splitmix64-style finalizer). `| 1` keeps every
/// minted id nonzero — id 0 universally means "untraced".
pub fn mint_id(node: u64, seq: u64) -> u64 {
    let mut z = node
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(seq.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    (z ^ (z >> 31)) | 1
}

/// Whole-request sampling decision: `true` when a trace survives 1-in-
/// `every` sampling. Hash-based on the trace id alone, so every event
/// of a trace — across nodes, shards, and retransmissions — gets the
/// same verdict and a sampled timeline never contains half a tree.
pub fn sample_keep(trace_id: u64, every: u64) -> bool {
    if every <= 1 {
        return true;
    }
    let mut z = trace_id ^ 0xD6E8_FEB8_6659_FD93;
    z = (z ^ (z >> 32)).wrapping_mul(0xD6E8_FEB8_6659_FD93);
    z ^= z >> 32;
    z.is_multiple_of(every)
}

/// One reconstructed span-tree node (a copy of the fields the walker
/// needs from a traced [`Event`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanNode {
    /// Site name.
    pub name: &'static str,
    /// Category.
    pub cat: &'static str,
    /// Owning track (destination node for transits).
    pub tid: u64,
    /// Source node for cross-node spans, 0 otherwise.
    pub tid2: u64,
    /// Start, virtual µs.
    pub ts_us: u64,
    /// Duration, virtual µs (0 = instant).
    pub dur_us: u64,
    /// This span's id (0 for instants, which have no identity).
    pub span_id: u64,
    /// The parent span id (0 only on root markers).
    pub parent_id: u64,
}

/// One request's reconstructed span tree.
#[derive(Debug, Clone)]
pub struct TraceTree {
    /// The trace identity.
    pub trace_id: u64,
    /// Root span id (from the `trace.begin` marker; 0 when the begin
    /// marker is missing, which makes the tree incomplete).
    pub root_span_id: u64,
    /// Node that issued the primitive.
    pub root_tid: u64,
    /// When the user part issued the primitive.
    pub begin_us: u64,
    /// When the terminating indication was delivered, if it was.
    pub end_us: Option<u64>,
    /// Whether a `trace.begin` marker was seen.
    pub has_begin: bool,
    /// Segment spans (`dur_us > 0`), canonically sorted.
    pub spans: Vec<SpanNode>,
    /// Instant events excluding the begin/end markers, canonically
    /// sorted.
    pub instants: Vec<SpanNode>,
}

/// Latency attribution for one *completed* request: the four segment
/// classes sum exactly to the end-to-end latency (handlers execute in
/// zero virtual time, so `handler_us` counts occurrences via
/// `handler_events` and contributes 0 µs by construction; time not on
/// the wire is queueing — at the link or waiting for the resource).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestBreakdown {
    /// The trace identity.
    pub trace_id: u64,
    /// Node that issued the primitive.
    pub root_tid: u64,
    /// Issue time, virtual µs.
    pub begin_us: u64,
    /// End-to-end latency (issue → terminating indication), µs.
    pub end_to_end_us: u64,
    /// Handler execution time (always 0 in virtual time).
    pub handler_us: u64,
    /// Time neither on the wire nor retransmitting: link serialization
    /// queueing plus application-level waiting (resource contention).
    pub queue_us: u64,
    /// First-transmission link transit time on the critical path.
    pub link_us: u64,
    /// Link transit time attributable to retransmitted frames.
    pub retransmit_us: u64,
    /// Number of segment spans in the tree.
    pub spans: u64,
    /// Number of handler/instant events in the tree.
    pub handler_events: u64,
    /// Number of retransmit segments.
    pub retransmits: u64,
}

fn canonical_span_key(s: &SpanNode) -> (u64, u64, u64, u64, u64, &'static str, &'static str) {
    (
        s.ts_us,
        s.dur_us,
        s.span_id,
        s.parent_id,
        s.tid,
        s.name,
        s.cat,
    )
}

/// Groups a recorder's traced events by trace id and reconstructs one
/// [`TraceTree`] per trace, in ascending trace-id order.
///
/// The grouping map and the per-tree canonical sorts make the output a
/// pure function of the event *multiset*: the sharded engine absorbs
/// per-shard recorders in shard order, not global time order, and this
/// walk erases that difference — which is what keeps `TRACE_summary`
/// and the sorted Chrome trace byte-identical across `--shards`.
pub fn trace_trees(events: &[Event]) -> Vec<TraceTree> {
    let mut trees: BTreeMap<u64, TraceTree> = BTreeMap::new();
    for e in events {
        if e.trace_id == 0 {
            continue;
        }
        let tree = trees.entry(e.trace_id).or_insert_with(|| TraceTree {
            trace_id: e.trace_id,
            root_span_id: 0,
            root_tid: 0,
            begin_us: 0,
            end_us: None,
            has_begin: false,
            spans: Vec::new(),
            instants: Vec::new(),
        });
        let node = SpanNode {
            name: e.name,
            cat: e.cat,
            tid: e.tid,
            tid2: e.tid2,
            ts_us: e.ts_us,
            dur_us: e.dur_us,
            span_id: e.span_id,
            parent_id: e.parent_id,
        };
        match e.name {
            TRACE_BEGIN => {
                tree.has_begin = true;
                tree.root_span_id = e.span_id;
                tree.root_tid = e.tid;
                tree.begin_us = e.ts_us;
            }
            TRACE_END => {
                tree.end_us = Some(e.ts_us);
            }
            _ if e.dur_us > 0 => tree.spans.push(node),
            _ => tree.instants.push(node),
        }
    }
    let mut out: Vec<TraceTree> = trees.into_values().collect();
    for tree in &mut out {
        tree.spans.sort_by_key(canonical_span_key);
        tree.instants.sort_by_key(canonical_span_key);
    }
    out
}

impl TraceTree {
    /// The root interval's effective end: the end marker, extended to
    /// cover stragglers (duplicate deliveries, window-refill and ACK
    /// transits that land after the terminating indication).
    pub fn extended_end_us(&self) -> u64 {
        let mut end = self.end_us.unwrap_or(self.begin_us);
        for s in &self.spans {
            end = end.max(s.ts_us + s.dur_us);
        }
        for i in &self.instants {
            end = end.max(i.ts_us);
        }
        end
    }

    /// Walks the tree of a *completed* request (begin and end markers
    /// both present) and attributes its end-to-end latency. Returns
    /// `None` for incomplete trees — `free` indications open traces
    /// that terminate nowhere, and a time-capped run can cut a request
    /// short; both count as incomplete, never as zero-latency.
    ///
    /// Attribution is an elementary interval sweep over the segment
    /// spans clamped to `[begin, end]`, with the priority `retransmit >
    /// transit > queue_wait` where segments overlap; the uncovered
    /// remainder — time the request spent waiting at the application
    /// layer — lands in `queue_us`. The four classes therefore sum to
    /// `end_to_end_us` exactly.
    pub fn breakdown(&self) -> Option<RequestBreakdown> {
        let end = self.end_us?;
        if !self.has_begin {
            return None;
        }
        let begin = self.begin_us;
        let total = end.saturating_sub(begin);
        let mut cuts: Vec<u64> = Vec::with_capacity(self.spans.len() * 2 + 2);
        let mut segments: Vec<(u64, u64, u8)> = Vec::with_capacity(self.spans.len());
        let mut retransmits = 0u64;
        for s in &self.spans {
            let priority = match s.name {
                SPAN_RETRANSMIT => 3,
                SPAN_TRANSIT => 2,
                SPAN_QUEUE_WAIT => 1,
                _ => 0,
            };
            if s.name == SPAN_RETRANSMIT {
                retransmits += 1;
            }
            if priority == 0 {
                continue;
            }
            let a = s.ts_us.max(begin);
            let b = (s.ts_us + s.dur_us).min(end);
            if a >= b {
                continue;
            }
            cuts.push(a);
            cuts.push(b);
            segments.push((a, b, priority));
        }
        cuts.sort_unstable();
        cuts.dedup();
        let (mut retransmit_us, mut link_us, mut queue_wait_us) = (0u64, 0u64, 0u64);
        for pair in cuts.windows(2) {
            let (a, b) = (pair[0], pair[1]);
            let priority = segments
                .iter()
                .filter(|(x, y, _)| *x <= a && b <= *y)
                .map(|(_, _, p)| *p)
                .max()
                .unwrap_or(0);
            let len = b - a;
            match priority {
                3 => retransmit_us += len,
                2 => link_us += len,
                1 => queue_wait_us += len,
                _ => {}
            }
        }
        let covered = retransmit_us + link_us + queue_wait_us;
        Some(RequestBreakdown {
            trace_id: self.trace_id,
            root_tid: self.root_tid,
            begin_us: begin,
            end_to_end_us: total,
            handler_us: 0,
            queue_us: queue_wait_us + total.saturating_sub(covered),
            link_us,
            retransmit_us,
            spans: self.spans.len() as u64,
            handler_events: self.instants.len() as u64,
            retransmits,
        })
    }

    /// Structural invariants the proptest suite drives against real
    /// runs: every span/instant's parent exists in the tree, and every
    /// interval nests inside its parent's (the root interval extended
    /// per [`TraceTree::extended_end_us`]).
    pub fn check_nesting(&self) -> Result<(), String> {
        if !self.has_begin {
            // Without a root there is nothing to nest under; events of a
            // beginless tree are only possible if the begin marker was
            // dropped by the capacity bound — report that.
            return Err(format!("trace {:#x} has no begin marker", self.trace_id));
        }
        let root_end = self.extended_end_us();
        let mut intervals: BTreeMap<u64, (u64, u64)> = BTreeMap::new();
        intervals.insert(self.root_span_id, (self.begin_us, root_end));
        for s in &self.spans {
            if s.span_id == 0 {
                return Err(format!(
                    "span {:?} in trace {:#x} has id 0",
                    s.name, self.trace_id
                ));
            }
            intervals.insert(s.span_id, (s.ts_us, s.ts_us + s.dur_us));
        }
        for s in &self.spans {
            let Some(&(pa, pb)) = intervals.get(&s.parent_id) else {
                return Err(format!(
                    "span {:?}@{} in trace {:#x}: parent {:#x} does not exist",
                    s.name, s.ts_us, self.trace_id, s.parent_id
                ));
            };
            if s.ts_us < pa || s.ts_us + s.dur_us > pb {
                return Err(format!(
                    "span {:?} [{}, {}] escapes parent [{pa}, {pb}] in trace {:#x}",
                    s.name,
                    s.ts_us,
                    s.ts_us + s.dur_us,
                    self.trace_id
                ));
            }
        }
        for i in &self.instants {
            let Some(&(pa, pb)) = intervals.get(&i.parent_id) else {
                return Err(format!(
                    "instant {:?}@{} in trace {:#x}: parent {:#x} does not exist",
                    i.name, i.ts_us, self.trace_id, i.parent_id
                ));
            };
            if i.ts_us < pa || i.ts_us > pb {
                return Err(format!(
                    "instant {:?}@{} outside parent [{pa}, {pb}] in trace {:#x}",
                    i.name, i.ts_us, self.trace_id
                ));
            }
        }
        Ok(())
    }
}

/// Nearest-rank percentile over an ascending-sorted slice (the same
/// convention `FloorMetrics` uses for grant latencies, so the summary's
/// `latency_us` block is comparable with the sweep JSON).
pub fn percentile_us(sorted: &[u64], pct: u64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (sorted.len() as u64 * pct).div_ceil(100).max(1) as usize;
    sorted[rank.min(sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[allow(clippy::too_many_arguments)]
    fn ev(
        name: &'static str,
        tid: u64,
        tid2: u64,
        ts: u64,
        dur: u64,
        trace: u64,
        span: u64,
        parent: u64,
    ) -> Event {
        Event {
            name,
            cat: "net",
            tid,
            tid2,
            ts_us: ts,
            dur_us: dur,
            trace_id: trace,
            span_id: span,
            parent_id: parent,
        }
    }

    fn sample_events() -> Vec<Event> {
        vec![
            ev(TRACE_BEGIN, 1, 0, 100, 0, 7, 10, 0),
            ev(SPAN_TRANSIT, 2, 1, 100, 500, 7, 11, 10),
            ev("mw.dispatch", 2, 0, 600, 0, 7, 0, 11),
            ev(SPAN_TRANSIT, 1, 2, 600, 500, 7, 12, 10),
            ev(SPAN_RETRANSMIT, 1, 2, 800, 400, 7, 13, 10),
            ev(TRACE_END, 1, 0, 1300, 0, 7, 10, 0),
        ]
    }

    #[test]
    fn minted_ids_are_nonzero_and_distinct() {
        let a = mint_id(1, 1);
        let b = mint_id(1, 2);
        let c = mint_id(2, 1);
        assert_ne!(a, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
        assert_eq!(a, mint_id(1, 1), "minting is a pure function");
        assert_eq!(a & 1, 1);
    }

    #[test]
    fn sample_keep_is_per_trace_and_roughly_uniform() {
        assert!(sample_keep(42, 0));
        assert!(sample_keep(42, 1));
        let kept = (0..10_000u64)
            .map(|node| mint_id(node, 1))
            .filter(|&t| sample_keep(t, 10))
            .count();
        // 1-in-10 hashing: allow a generous band around 1000.
        assert!((600..1400).contains(&kept), "kept {kept} of 10000");
    }

    #[test]
    fn walker_reconstructs_the_tree() {
        let trees = trace_trees(&sample_events());
        assert_eq!(trees.len(), 1);
        let t = &trees[0];
        assert_eq!(t.trace_id, 7);
        assert_eq!(t.root_span_id, 10);
        assert_eq!(t.begin_us, 100);
        assert_eq!(t.end_us, Some(1300));
        assert_eq!(t.spans.len(), 3);
        assert_eq!(t.instants.len(), 1);
        t.check_nesting().unwrap();
    }

    #[test]
    fn walker_output_is_independent_of_event_order() {
        let mut shuffled = sample_events();
        shuffled.reverse();
        let a = trace_trees(&sample_events());
        let b = trace_trees(&shuffled);
        assert_eq!(a[0].spans, b[0].spans);
        assert_eq!(a[0].instants, b[0].instants);
        assert_eq!(a[0].begin_us, b[0].begin_us);
        assert_eq!(a[0].end_us, b[0].end_us);
    }

    #[test]
    fn breakdown_sums_to_end_to_end() {
        let trees = trace_trees(&sample_events());
        let b = trees[0].breakdown().unwrap();
        assert_eq!(b.end_to_end_us, 1200);
        // [100,600] transit, [600,800] transit, [800,1200] retransmit
        // (priority over the second transit's tail), [1200,1300] uncovered.
        assert_eq!(b.link_us, 700);
        assert_eq!(b.retransmit_us, 400);
        assert_eq!(b.queue_us, 100);
        assert_eq!(b.handler_us, 0);
        assert_eq!(
            b.handler_us + b.queue_us + b.link_us + b.retransmit_us,
            b.end_to_end_us
        );
        assert_eq!(b.retransmits, 1);
        assert_eq!(b.handler_events, 1);
    }

    #[test]
    fn incomplete_trees_have_no_breakdown() {
        let mut events = sample_events();
        events.pop(); // drop trace.end
        let trees = trace_trees(&events);
        assert!(trees[0].breakdown().is_none());
    }

    #[test]
    fn nesting_check_catches_an_orphan_parent() {
        let mut events = sample_events();
        events.push(ev(SPAN_TRANSIT, 3, 1, 200, 10, 7, 99, 12345));
        let trees = trace_trees(&events);
        let err = trees[0].check_nesting().unwrap_err();
        assert!(err.contains("does not exist"), "{err}");
    }

    #[test]
    fn nesting_check_catches_an_escaping_child() {
        let mut events = sample_events();
        // Instant before the root opened.
        events.push(ev("mw.dispatch", 1, 0, 50, 0, 7, 0, 10));
        let trees = trace_trees(&events);
        let err = trees[0].check_nesting().unwrap_err();
        assert!(err.contains("outside parent"), "{err}");
    }

    #[test]
    fn percentile_uses_nearest_rank() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile_us(&v, 50), 50);
        assert_eq!(percentile_us(&v, 95), 95);
        assert_eq!(percentile_us(&v, 99), 99);
        assert_eq!(percentile_us(&[42], 99), 42);
        assert_eq!(percentile_us(&[], 50), 0);
    }
}
