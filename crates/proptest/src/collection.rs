//! Collection strategies: `vec` and `btree_set`.

use std::collections::BTreeSet;
use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A size bound for generated collections.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeRange {
    min: usize,
    /// Exclusive upper bound.
    max: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(range: Range<usize>) -> Self {
        assert!(range.start < range.end, "empty collection size range");
        SizeRange {
            min: range.start,
            max: range.end,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange {
            min: exact,
            max: exact + 1,
        }
    }
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        self.min + rng.next_below((self.max - self.min) as u64) as usize
    }
}

/// Generates `Vec`s whose length lies in `size` and whose elements come
/// from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// The strategy returned by [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = self.size.pick(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Generates `BTreeSet`s with at most `size.end - 1` elements (duplicates
/// collapse, as in the real framework).
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

/// The strategy returned by [`btree_set`].
#[derive(Debug, Clone)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = self.size.pick(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn vec_respects_size_range() {
        let strat = vec(0u8..255, 2..7);
        let mut rng = TestRng::for_case(0);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((2..7).contains(&v.len()));
        }
    }

    #[test]
    fn btree_set_collapses_duplicates() {
        let strat = btree_set(0u8..2, 5..6);
        let mut rng = TestRng::for_case(1);
        let s = strat.generate(&mut rng);
        assert!(s.len() <= 2);
    }

    #[test]
    fn exact_size_from_usize() {
        let strat = vec(0u8..10, 4usize);
        let mut rng = TestRng::for_case(2);
        assert_eq!(strat.generate(&mut rng).len(), 4);
    }
}
