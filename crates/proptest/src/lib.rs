//! A hermetic, dependency-free stand-in for the crates.io `proptest`
//! framework.
//!
//! The build environment for this workspace has no registry access, so the
//! real proptest cannot be compiled. This crate implements the API subset
//! the workspace's property tests use: the [`proptest!`] macro, the
//! [`strategy::Strategy`] trait with `prop_map`/`prop_recursive`/`boxed`,
//! range / tuple / [`strategy::Just`] / `any::<T>()` / string-pattern
//! strategies, [`collection::vec`] and [`collection::btree_set`],
//! [`prop_oneof!`], and the `prop_assert*` macros.
//!
//! Differences from the real framework, by design:
//!
//! * no shrinking — a failing case panics with the generated inputs left to
//!   the assertion message;
//! * generation is deterministic: case `i` of every test derives its RNG
//!   from `i` only, so failures reproduce exactly across runs;
//! * string strategies support the `.{m,n}` pattern family (any printable
//!   run of bounded length) rather than full regular expressions.

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! The glob-import surface, mirroring `proptest::prelude`.
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests. Each `fn name(arg in strategy, ...) { body }`
/// item expands to a `#[test]`-style function that runs `body` for
/// `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut rng = $crate::test_runner::TestRng::for_case(case);
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                    $body
                }
            }
        )*
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)*) => { assert_eq!($left, $right, $($fmt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)*) => { assert_ne!($left, $right, $($fmt)*) };
}

/// Chooses uniformly between several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn generation_is_deterministic_per_case() {
        let strat = crate::collection::vec(0u64..100, 1..8);
        let mut a = crate::test_runner::TestRng::for_case(7);
        let mut b = crate::test_runner::TestRng::for_case(7);
        assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::test_runner::TestRng::for_case(0);
        for _ in 0..1_000 {
            let v = (10u64..20).generate(&mut rng);
            assert!((10..20).contains(&v));
            let f = (0.25f64..0.75).generate(&mut rng);
            assert!((0.25..0.75).contains(&f));
            let i = (-5i64..5).generate(&mut rng);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn oneof_covers_all_options() {
        let strat = prop_oneof![Just(1u8), Just(2), Just(3)];
        let mut rng = crate::test_runner::TestRng::for_case(1);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..200 {
            seen.insert(strat.generate(&mut rng));
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn string_pattern_bounds_length() {
        let mut rng = crate::test_runner::TestRng::for_case(2);
        for _ in 0..200 {
            let s = ".{0,24}".generate(&mut rng);
            assert!(s.chars().count() <= 24);
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Clone, Debug, PartialEq)]
        enum Tree {
            Leaf(u8),
            Node(Vec<Tree>),
        }
        let strat = any::<u8>()
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 16, 4, |inner| {
                crate::collection::vec(inner, 0..4).prop_map(Tree::Node)
            });
        let mut rng = crate::test_runner::TestRng::for_case(3);
        for _ in 0..100 {
            let _ = strat.generate(&mut rng);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro wires arguments, config and body together.
        #[test]
        fn macro_generates_cases(x in 0u32..50, ys in crate::collection::vec(0u8..10, 0..5)) {
            prop_assert!(x < 50);
            prop_assert!(ys.len() < 5);
            prop_assert!(ys.iter().all(|&y| y < 10));
        }
    }
}
