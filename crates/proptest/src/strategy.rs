//! The [`Strategy`] trait and the combinators the workspace uses.

use std::rc::Rc;

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Produces one value from the deterministic stream `rng`.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    /// Builds a recursive strategy: `recurse` receives the strategy for the
    /// smaller level and returns the strategy for a composite level. The
    /// `_desired_size` and `_expected_branch_size` hints of the real
    /// framework are accepted for signature compatibility.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf: BoxedStrategy<Self::Value> = self.boxed();
        let mut level = leaf.clone();
        for _ in 0..depth {
            // Each level is a fair choice between bottoming out at a leaf
            // and recursing one step deeper, so generation always
            // terminates within `depth` levels.
            level = Union::new(vec![leaf.clone(), recurse(level).boxed()]).boxed();
        }
        level
    }

    /// Type-erases the strategy behind a cheap-to-clone handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Rc::new(self),
        }
    }
}

/// A type-erased, clonable strategy handle.
pub struct BoxedStrategy<V> {
    inner: Rc<dyn Strategy<Value = V>>,
}

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: Rc::clone(&self.inner),
        }
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.inner.generate(rng)
    }
}

/// Always generates a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The [`Strategy::prop_map`] combinator.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between strategies of a common value type; built by
/// [`crate::prop_oneof!`].
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// A uniform union of the given options.
    ///
    /// # Panics
    ///
    /// Panics when `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let pick = rng.next_below(self.options.len() as u64) as usize;
        self.options[pick].generate(rng)
    }
}

/// Types with a canonical "any value" strategy, mirroring
/// `proptest::arbitrary::Arbitrary`.
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T> {
    marker: std::marker::PhantomData<T>,
}

/// The canonical strategy for the whole domain of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        marker: std::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.next_f64()
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        // Printable ASCII keeps generated text readable in assertions.
        (b' ' + rng.next_below(95) as u8) as char
    }
}

macro_rules! range_strategy_ints {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.next_below(span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u64;
                (start as i128 + rng.next_below(span.wrapping_add(1)) as i128) as $t
            }
        }
    )*};
}
range_strategy_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

/// String-pattern strategy: `".{m,n}"` generates a printable string of `m`
/// to `n` characters. Other patterns fall back to a short printable string;
/// the workspace only relies on the bounded-length family.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (min, max) = parse_repeat_bounds(self).unwrap_or((0, 16));
        let len = min + rng.next_below((max - min + 1) as u64) as usize;
        // Mostly ASCII, with occasional multi-byte characters so codecs see
        // non-trivial UTF-8.
        (0..len)
            .map(|_| {
                if rng.next_below(16) == 0 {
                    const EXOTIC: [char; 6] = ['é', 'ß', '中', '✓', '𝛼', '∅'];
                    EXOTIC[rng.next_below(EXOTIC.len() as u64) as usize]
                } else {
                    char::arbitrary(rng)
                }
            })
            .collect()
    }
}

/// Extracts `(m, n)` from a trailing `{m,n}` repetition, e.g. `".{0,24}"`.
fn parse_repeat_bounds(pattern: &str) -> Option<(usize, usize)> {
    let inner = pattern.strip_suffix('}')?;
    let (_, bounds) = inner.rsplit_once('{')?;
    let (lo, hi) = bounds.split_once(',')?;
    let lo: usize = lo.trim().parse().ok()?;
    let hi: usize = hi.trim().parse().ok()?;
    (lo <= hi).then_some((lo, hi))
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_repeat_bounds_handles_the_pattern_family() {
        assert_eq!(parse_repeat_bounds(".{0,24}"), Some((0, 24)));
        assert_eq!(parse_repeat_bounds("[a-z]{2,5}"), Some((2, 5)));
        assert_eq!(parse_repeat_bounds("plain"), None);
        assert_eq!(parse_repeat_bounds(".{9,3}"), None);
    }

    #[test]
    fn tuples_generate_componentwise() {
        let mut rng = TestRng::for_case(4);
        let (a, b, c) = (0u8..10, 10u8..20, 20u8..30).generate(&mut rng);
        assert!(a < 10 && (10..20).contains(&b) && (20..30).contains(&c));
    }

    #[test]
    fn map_applies_function() {
        let mut rng = TestRng::for_case(5);
        let s = (1u64..10).prop_map(|v| v * 100);
        let v = s.generate(&mut rng);
        assert!((100..1000).contains(&v) && v % 100 == 0);
    }
}
