//! Deterministic case generation: configuration and the per-case RNG.

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    /// 64 cases — smaller than the real framework's 256 to keep hermetic CI
    /// runs fast; raise per-test via [`ProptestConfig::with_cases`].
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// SplitMix64: tiny, high-quality-enough, and — critically — seeded from
/// the case index alone, so every failure reproduces byte-identically.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// The RNG for case `case` of any property.
    pub fn for_case(case: u32) -> Self {
        TestRng {
            state: (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x5851_F42D_4C95_7F2D,
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; 0 when `bound` is 0.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        // Multiply-shift bounded mapping (Lemire); bias is negligible for
        // test-data purposes.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_have_distinct_streams() {
        let a = TestRng::for_case(1).next_u64();
        let b = TestRng::for_case(2).next_u64();
        assert_ne!(a, b);
    }

    #[test]
    fn next_below_is_bounded_and_total() {
        let mut rng = TestRng::for_case(0);
        assert_eq!(rng.next_below(0), 0);
        for _ in 0..1_000 {
            assert!(rng.next_below(7) < 7);
        }
    }

    #[test]
    fn next_f64_is_unit_interval() {
        let mut rng = TestRng::for_case(9);
        for _ in 0..1_000 {
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
