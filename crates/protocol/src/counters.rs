//! Per-node protocol counters.

use std::fmt;

/// Counters kept by a [`crate::ProtocolNode`], observable from the harness
/// after a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProtoCounters {
    /// PDUs handed to the lower-level service.
    pub pdus_sent: u64,
    /// PDU payload bytes handed to the lower-level service (before any
    /// reliability framing).
    pub pdu_bytes_sent: u64,
    /// PDUs successfully decoded and delivered to the entity.
    pub pdus_received: u64,
    /// Messages that failed PDU decoding.
    pub decode_errors: u64,
    /// Retransmissions performed by the reliability sub-layer.
    pub retransmissions: u64,
    /// Duplicate frames suppressed by the reliability sub-layer.
    pub duplicates_suppressed: u64,
}

impl ProtoCounters {
    /// Adds another node's counters to this one (for fleet-wide totals).
    pub fn absorb(&mut self, other: &ProtoCounters) {
        self.pdus_sent += other.pdus_sent;
        self.pdu_bytes_sent += other.pdu_bytes_sent;
        self.pdus_received += other.pdus_received;
        self.decode_errors += other.decode_errors;
        self.retransmissions += other.retransmissions;
        self.duplicates_suppressed += other.duplicates_suppressed;
    }
}

impl fmt::Display for ProtoCounters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "pdus_sent={} bytes={} pdus_received={} decode_errors={} retransmissions={} dups_suppressed={}",
            self.pdus_sent,
            self.pdu_bytes_sent,
            self.pdus_received,
            self.decode_errors,
            self.retransmissions,
            self.duplicates_suppressed
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_sums_fields() {
        let mut a = ProtoCounters {
            pdus_sent: 1,
            pdu_bytes_sent: 10,
            pdus_received: 2,
            decode_errors: 3,
            retransmissions: 4,
            duplicates_suppressed: 5,
        };
        a.absorb(&a.clone());
        assert_eq!(a.pdus_sent, 2);
        assert_eq!(a.pdu_bytes_sent, 20);
        assert_eq!(a.duplicates_suppressed, 10);
    }

    #[test]
    fn display_lists_all_counters() {
        let s = ProtoCounters::default().to_string();
        assert!(s.contains("pdus_sent=0"));
        assert!(s.contains("retransmissions=0"));
    }
}
