//! User parts, protocol entities and the node that binds them.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use svckit_codec::{CodecError, Pdu, PduRegistry};
use svckit_model::{Duration, Instant, PartId, Sap, Value};
use svckit_netsim::{Context, Payload, Process, TimerId};

use crate::counters::ProtoCounters;
use crate::reliable::{ReliabilityConfig, ReliableLink};

/// Timer ids at or above this value belong to the user part.
const USER_TIMER_BASE: u64 = 1 << 62;
/// Timer ids at or above this value belong to the reliability sub-layer.
const RELIABLE_TIMER_BASE: u64 = 1 << 63;

/// The application behaviour above the service boundary.
///
/// A user part can only invoke service primitives, receive indications and
/// set timers; it has no access to the network. This enforces, in the type
/// system, the paper's point that "the design of the application is not
/// influenced by the choice of a protocol solution".
pub trait UserPart: Send {
    /// Called once at simulation start.
    fn on_start(&mut self, ctx: &mut UserCtx<'_, '_>) {
        let _ = ctx;
    }

    /// Called when the service delivers a primitive to this user
    /// (a `ToUser` primitive, e.g. `granted`).
    fn on_indication(&mut self, ctx: &mut UserCtx<'_, '_>, primitive: &str, args: Vec<Value>);

    /// Called when a timer set via [`UserCtx::set_timer`] fires.
    fn on_timer(&mut self, ctx: &mut UserCtx<'_, '_>, timer: TimerId) {
        let _ = (ctx, timer);
    }
}

/// The behaviour below the service boundary: one entity of the distributed
/// service provider.
pub trait ProtocolEntity: Send {
    /// Called once at simulation start (before the user part's `on_start`).
    fn on_start(&mut self, ctx: &mut EntityCtx<'_, '_>) {
        let _ = ctx;
    }

    /// Called when the local user part invokes a primitive
    /// (a `FromUser` primitive, e.g. `request`).
    fn on_user_primitive(&mut self, ctx: &mut EntityCtx<'_, '_>, primitive: &str, args: Vec<Value>);

    /// Called when a PDU arrives from a peer entity.
    fn on_pdu(&mut self, ctx: &mut EntityCtx<'_, '_>, from: PartId, pdu: Pdu);

    /// Called when a timer set via [`EntityCtx::set_timer`] fires.
    fn on_timer(&mut self, ctx: &mut EntityCtx<'_, '_>, timer: TimerId) {
        let _ = (ctx, timer);
    }
}

/// Capabilities of a [`UserPart`] handler: invoke primitives, set timers,
/// read the clock. Nothing else.
#[derive(Debug)]
pub struct UserCtx<'a, 'b> {
    net: &'a mut Context<'b>,
    sap: &'a Sap,
    to_entity: &'a mut VecDeque<(String, Vec<Value>)>,
}

impl UserCtx<'_, '_> {
    /// The current simulated time.
    pub fn now(&self) -> Instant {
        self.net.now()
    }

    /// The access point at which this user part observes the service.
    pub fn sap(&self) -> &Sap {
        self.sap
    }

    /// Invokes a service primitive. The occurrence is recorded in the trace
    /// and handed to the local protocol entity.
    ///
    /// Issuing a primitive opens a causal request trace at this node: all
    /// downstream work — PDUs, timers, retransmissions, peer handlers —
    /// is stitched into one span tree until the terminating indication
    /// comes back ([`EntityCtx::deliver_to_user`]).
    pub fn invoke(&mut self, primitive: impl Into<String>, args: Vec<Value>) {
        let primitive = primitive.into();
        self.net.trace_begin();
        self.net
            .record_primitive(self.sap.clone(), primitive.clone(), args.clone());
        self.to_entity.push_back((primitive, args));
    }

    /// Schedules (or reschedules) a user-part timer.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the timer id is outside `0..2^61`.
    pub fn set_timer(&mut self, delay: Duration, id: TimerId) {
        debug_assert!(id.0 < USER_TIMER_BASE, "user timer id too large");
        self.net.set_timer(delay, TimerId(id.0 | USER_TIMER_BASE));
    }

    /// Cancels a pending user-part timer.
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.net.cancel_timer(TimerId(id.0 | USER_TIMER_BASE));
    }

    /// Deterministic random value in `[0, bound)`.
    pub fn rand_below(&mut self, bound: u64) -> u64 {
        self.net.rand_below(bound)
    }
}

/// Capabilities of a [`ProtocolEntity`] handler: deliver indications to the
/// local user, exchange PDUs with peers, set timers.
#[derive(Debug)]
pub struct EntityCtx<'a, 'b> {
    net: &'a mut Context<'b>,
    sap: &'a Sap,
    registry: &'a PduRegistry,
    to_user: &'a mut VecDeque<(String, Vec<Value>)>,
    outgoing: &'a mut VecDeque<(PartId, Vec<u8>)>,
    counters: &'a Arc<Mutex<ProtoCounters>>,
}

impl EntityCtx<'_, '_> {
    /// The current simulated time.
    pub fn now(&self) -> Instant {
        self.net.now()
    }

    /// This node's identity.
    pub fn id(&self) -> PartId {
        self.net.id()
    }

    /// The access point served by this entity.
    pub fn sap(&self) -> &Sap {
        self.sap
    }

    /// The PDU registry in force on this stack.
    pub fn registry(&self) -> &PduRegistry {
        self.registry
    }

    /// Delivers a service primitive to the local user part. The occurrence
    /// is recorded in the trace.
    ///
    /// Delivery terminates this node's open request trace, if any: the
    /// indication is the service's answer to the primitive the local user
    /// issued, so the span tree closes here.
    pub fn deliver_to_user(&mut self, primitive: impl Into<String>, args: Vec<Value>) {
        let primitive = primitive.into();
        self.net
            .record_primitive(self.sap.clone(), primitive.clone(), args.clone());
        self.net.trace_end();
        self.to_user.push_back((primitive, args));
    }

    /// Encodes and sends a PDU to the peer entity at node `to`.
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] when the PDU name is unknown or the
    /// arguments do not match its schema; nothing is sent in that case.
    pub fn send_pdu(&mut self, to: PartId, name: &str, args: &[Value]) -> Result<(), CodecError> {
        let bytes = self.registry.encode(name, args)?;
        {
            let mut c = self.counters.lock().unwrap();
            c.pdus_sent += 1;
            c.pdu_bytes_sent += bytes.len() as u64;
        }
        svckit_obs::obs_count!("proto.pdus_sent");
        svckit_obs::obs_count!("proto.pdu_bytes_sent", bytes.len());
        svckit_obs::obs_record!("proto.pdu_size", bytes.len());
        svckit_obs::obs_event!(
            "proto.encode_send",
            "proto",
            self.net.id().raw(),
            self.net.now().as_micros()
        );
        self.outgoing.push_back((to, bytes));
        Ok(())
    }

    /// Schedules (or reschedules) an entity timer.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the timer id is outside `0..2^61`.
    pub fn set_timer(&mut self, delay: Duration, id: TimerId) {
        debug_assert!(id.0 < USER_TIMER_BASE, "entity timer id too large");
        self.net.set_timer(delay, id);
    }

    /// Cancels a pending entity timer.
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.net.cancel_timer(id);
    }

    /// Deterministic random value in `[0, bound)`.
    pub fn rand_below(&mut self, bound: u64) -> u64 {
        self.net.rand_below(bound)
    }
}

/// One node of a protocol-centred deployment: the user part, its protocol
/// entity, the shared PDU registry, and (optionally) a reliability
/// sub-layer — implementing the [`Process`] interface of the network
/// simulator.
pub struct ProtocolNode {
    sap: Sap,
    user: Box<dyn UserPart>,
    entity: Box<dyn ProtocolEntity>,
    registry: Arc<PduRegistry>,
    counters: Arc<Mutex<ProtoCounters>>,
    reliable: Option<ReliableLink>,
    to_entity: VecDeque<(String, Vec<Value>)>,
    to_user: VecDeque<(String, Vec<Value>)>,
    outgoing: VecDeque<(PartId, Vec<u8>)>,
}

impl std::fmt::Debug for ProtocolNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProtocolNode")
            .field("sap", &self.sap)
            .field("reliable", &self.reliable.is_some())
            .finish_non_exhaustive()
    }
}

impl ProtocolNode {
    /// Creates a node serving access point `sap`.
    pub fn new(
        sap: Sap,
        user: Box<dyn UserPart>,
        entity: Box<dyn ProtocolEntity>,
        registry: Arc<PduRegistry>,
    ) -> Self {
        ProtocolNode {
            sap,
            user,
            entity,
            registry,
            counters: Arc::new(Mutex::new(ProtoCounters::default())),
            reliable: None,
            to_entity: VecDeque::new(),
            to_user: VecDeque::new(),
            outgoing: VecDeque::new(),
        }
    }

    /// Inserts a stop-and-wait reliability sub-layer between the entity and
    /// the lower-level service (builder-style). Use this when the lower
    /// service is an unreliable datagram service.
    #[must_use]
    pub fn with_reliability(mut self, config: ReliabilityConfig) -> Self {
        self.reliable = Some(ReliableLink::new(config, RELIABLE_TIMER_BASE));
        self
    }

    /// A handle onto this node's counters, valid after the node has been
    /// moved into the simulator.
    pub fn counters(&self) -> Arc<Mutex<ProtoCounters>> {
        Arc::clone(&self.counters)
    }

    fn flush_outgoing(&mut self, net: &mut Context<'_>) {
        while let Some((to, bytes)) = self.outgoing.pop_front() {
            match &mut self.reliable {
                Some(rel) => rel.send(net, to, bytes),
                None => net.send(to, bytes),
            }
        }
    }

    /// Processes queued boundary crossings until the node is locally
    /// quiescent.
    fn pump(&mut self, net: &mut Context<'_>) {
        loop {
            self.flush_outgoing(net);
            if let Some((name, args)) = self.to_entity.pop_front() {
                let mut ctx = EntityCtx {
                    net: &mut *net,
                    sap: &self.sap,
                    registry: &self.registry,
                    to_user: &mut self.to_user,
                    outgoing: &mut self.outgoing,
                    counters: &self.counters,
                };
                self.entity.on_user_primitive(&mut ctx, &name, args);
            } else if let Some((name, args)) = self.to_user.pop_front() {
                let mut ctx = UserCtx {
                    net: &mut *net,
                    sap: &self.sap,
                    to_entity: &mut self.to_entity,
                };
                self.user.on_indication(&mut ctx, &name, args);
            } else {
                break;
            }
        }
    }
}

impl Process for ProtocolNode {
    fn on_start(&mut self, net: &mut Context<'_>) {
        {
            let mut ctx = EntityCtx {
                net: &mut *net,
                sap: &self.sap,
                registry: &self.registry,
                to_user: &mut self.to_user,
                outgoing: &mut self.outgoing,
                counters: &self.counters,
            };
            self.entity.on_start(&mut ctx);
        }
        {
            let mut ctx = UserCtx {
                net: &mut *net,
                sap: &self.sap,
                to_entity: &mut self.to_entity,
            };
            self.user.on_start(&mut ctx);
        }
        self.pump(net);
    }

    fn on_message(&mut self, net: &mut Context<'_>, from: PartId, payload: Payload) {
        let delivered = match &mut self.reliable {
            Some(rel) => {
                let mut counters = self.counters.lock().unwrap();
                rel.on_raw(net, from, &payload, &mut counters)
            }
            None => Some(payload),
        };
        if let Some(bytes) = delivered {
            match self.registry.decode(&bytes) {
                Ok(pdu) => {
                    self.counters.lock().unwrap().pdus_received += 1;
                    svckit_obs::obs_count!("proto.pdus_received");
                    svckit_obs::obs_count!("proto.pdu_bytes_received", bytes.len());
                    svckit_obs::obs_event!(
                        "proto.receive_decode",
                        "proto",
                        net.id().raw(),
                        net.now().as_micros()
                    );
                    let mut ctx = EntityCtx {
                        net: &mut *net,
                        sap: &self.sap,
                        registry: &self.registry,
                        to_user: &mut self.to_user,
                        outgoing: &mut self.outgoing,
                        counters: &self.counters,
                    };
                    self.entity.on_pdu(&mut ctx, from, pdu);
                }
                Err(_) => {
                    self.counters.lock().unwrap().decode_errors += 1;
                    svckit_obs::obs_count!("proto.malformed_drops");
                    svckit_obs::obs_event!(
                        "proto.malformed_drop",
                        "proto",
                        net.id().raw(),
                        net.now().as_micros()
                    );
                }
            }
        }
        self.pump(net);
    }

    fn on_timer(&mut self, net: &mut Context<'_>, timer: TimerId) {
        if timer.0 >= RELIABLE_TIMER_BASE {
            if let Some(rel) = &mut self.reliable {
                let mut counters = self.counters.lock().unwrap();
                rel.on_timer(net, timer, &mut counters);
            }
        } else if timer.0 >= USER_TIMER_BASE {
            let mut ctx = UserCtx {
                net: &mut *net,
                sap: &self.sap,
                to_entity: &mut self.to_entity,
            };
            self.user
                .on_timer(&mut ctx, TimerId(timer.0 & !USER_TIMER_BASE));
        } else {
            let mut ctx = EntityCtx {
                net: &mut *net,
                sap: &self.sap,
                registry: &self.registry,
                to_user: &mut self.to_user,
                outgoing: &mut self.outgoing,
                counters: &self.counters,
            };
            self.entity.on_timer(&mut ctx, timer);
        }
        self.pump(net);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use svckit_codec::PduSchema;
    use svckit_model::{Duration, ValueType};
    use svckit_netsim::{LinkConfig, SimConfig, Simulator};

    /// User part that sends one `ping` primitive at start and counts
    /// `pong` indications.
    struct PingUser {
        peer_sap_hits: Arc<Mutex<u32>>,
    }
    impl UserPart for PingUser {
        fn on_start(&mut self, ctx: &mut UserCtx<'_, '_>) {
            ctx.invoke("ping", vec![Value::Id(1)]);
        }
        fn on_indication(
            &mut self,
            _ctx: &mut UserCtx<'_, '_>,
            primitive: &str,
            _args: Vec<Value>,
        ) {
            assert_eq!(primitive, "pong");
            *self.peer_sap_hits.lock().unwrap() += 1;
        }
    }

    /// Passive user that never invokes anything.
    struct SilentUser;
    impl UserPart for SilentUser {
        fn on_indication(&mut self, _: &mut UserCtx<'_, '_>, _: &str, _: Vec<Value>) {}
    }

    /// Entity: forwards `ping` as a PDU; answers an incoming ping PDU with a
    /// pong PDU; delivers a `pong` primitive on receiving a pong PDU.
    struct EchoEntity {
        peer: PartId,
    }
    impl ProtocolEntity for EchoEntity {
        fn on_user_primitive(
            &mut self,
            ctx: &mut EntityCtx<'_, '_>,
            primitive: &str,
            args: Vec<Value>,
        ) {
            assert_eq!(primitive, "ping");
            ctx.send_pdu(self.peer, "ping_pdu", &args).unwrap();
        }
        fn on_pdu(&mut self, ctx: &mut EntityCtx<'_, '_>, from: PartId, pdu: Pdu) {
            match pdu.name() {
                "ping_pdu" => ctx.send_pdu(from, "pong_pdu", pdu.args()).unwrap(),
                "pong_pdu" => ctx.deliver_to_user("pong", pdu.into_args()),
                other => panic!("unexpected pdu {other}"),
            }
        }
    }

    fn registry() -> Arc<PduRegistry> {
        let mut r = PduRegistry::new();
        r.register(PduSchema::new(1, "ping_pdu").field("x", ValueType::Id))
            .unwrap();
        r.register(PduSchema::new(2, "pong_pdu").field("x", ValueType::Id))
            .unwrap();
        Arc::new(r)
    }

    #[test]
    fn ping_pong_crosses_the_boundary_and_records_trace() {
        let reg = registry();
        let hits = Arc::new(Mutex::new(0));
        let a = ProtocolNode::new(
            Sap::new("user", PartId::new(1)),
            Box::new(PingUser {
                peer_sap_hits: Arc::clone(&hits),
            }),
            Box::new(EchoEntity {
                peer: PartId::new(2),
            }),
            Arc::clone(&reg),
        );
        let a_counters = a.counters();
        let b = ProtocolNode::new(
            Sap::new("user", PartId::new(2)),
            Box::new(SilentUser),
            Box::new(EchoEntity {
                peer: PartId::new(1),
            }),
            reg,
        );
        let mut sim = Simulator::new(SimConfig::new(1).default_link(LinkConfig::lan()));
        sim.add_process(PartId::new(1), Box::new(a)).unwrap();
        sim.add_process(PartId::new(2), Box::new(b)).unwrap();
        let report = sim.run_to_quiescence(Duration::from_secs(1)).unwrap();
        assert!(report.is_quiescent());
        assert_eq!(*hits.lock().unwrap(), 1);
        // Trace: ping (from-user at node 1) then pong (to-user at node 1).
        assert_eq!(report.trace().primitive_names(), vec!["ping", "pong"]);
        let c = a_counters.lock().unwrap();
        assert_eq!(c.pdus_sent, 1);
        assert_eq!(c.pdus_received, 1);
        assert_eq!(c.decode_errors, 0);
    }

    #[test]
    fn garbage_on_the_wire_is_counted_not_crashed() {
        struct Garbage {
            to: PartId,
        }
        impl Process for Garbage {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                ctx.send(self.to, vec![0xde, 0xad, 0xbe, 0xef]);
            }
            fn on_message(&mut self, _: &mut Context<'_>, _: PartId, _: Payload) {}
        }
        let reg = registry();
        let node = ProtocolNode::new(
            Sap::new("user", PartId::new(2)),
            Box::new(SilentUser),
            Box::new(EchoEntity {
                peer: PartId::new(1),
            }),
            reg,
        );
        let counters = node.counters();
        let mut sim = Simulator::new(SimConfig::new(1));
        sim.add_process(PartId::new(1), Box::new(Garbage { to: PartId::new(2) }))
            .unwrap();
        sim.add_process(PartId::new(2), Box::new(node)).unwrap();
        sim.run_to_quiescence(Duration::from_secs(1)).unwrap();
        assert_eq!(counters.lock().unwrap().decode_errors, 1);
        assert_eq!(counters.lock().unwrap().pdus_received, 0);
    }

    #[test]
    fn user_timers_are_routed_to_the_user_part() {
        struct TimedUser {
            fired: Arc<Mutex<bool>>,
        }
        impl UserPart for TimedUser {
            fn on_start(&mut self, ctx: &mut UserCtx<'_, '_>) {
                ctx.set_timer(Duration::from_millis(1), TimerId(5));
            }
            fn on_indication(&mut self, _: &mut UserCtx<'_, '_>, _: &str, _: Vec<Value>) {}
            fn on_timer(&mut self, _ctx: &mut UserCtx<'_, '_>, timer: TimerId) {
                assert_eq!(timer, TimerId(5));
                *self.fired.lock().unwrap() = true;
            }
        }
        struct NullEntity;
        impl ProtocolEntity for NullEntity {
            fn on_user_primitive(&mut self, _: &mut EntityCtx<'_, '_>, _: &str, _: Vec<Value>) {}
            fn on_pdu(&mut self, _: &mut EntityCtx<'_, '_>, _: PartId, _: Pdu) {}
        }
        let fired = Arc::new(Mutex::new(false));
        let node = ProtocolNode::new(
            Sap::new("user", PartId::new(1)),
            Box::new(TimedUser {
                fired: Arc::clone(&fired),
            }),
            Box::new(NullEntity),
            registry(),
        );
        let mut sim = Simulator::new(SimConfig::new(1));
        sim.add_process(PartId::new(1), Box::new(node)).unwrap();
        sim.run_to_quiescence(Duration::from_secs(1)).unwrap();
        assert!(*fired.lock().unwrap());
    }

    #[test]
    fn entity_timers_are_routed_to_the_entity() {
        struct TimedEntity {
            fired: Arc<Mutex<bool>>,
        }
        impl ProtocolEntity for TimedEntity {
            fn on_start(&mut self, ctx: &mut EntityCtx<'_, '_>) {
                ctx.set_timer(Duration::from_millis(2), TimerId(9));
            }
            fn on_user_primitive(&mut self, _: &mut EntityCtx<'_, '_>, _: &str, _: Vec<Value>) {}
            fn on_pdu(&mut self, _: &mut EntityCtx<'_, '_>, _: PartId, _: Pdu) {}
            fn on_timer(&mut self, _ctx: &mut EntityCtx<'_, '_>, timer: TimerId) {
                assert_eq!(timer, TimerId(9));
                *self.fired.lock().unwrap() = true;
            }
        }
        let fired = Arc::new(Mutex::new(false));
        let node = ProtocolNode::new(
            Sap::new("user", PartId::new(1)),
            Box::new(SilentUser),
            Box::new(TimedEntity {
                fired: Arc::clone(&fired),
            }),
            registry(),
        );
        let mut sim = Simulator::new(SimConfig::new(1));
        sim.add_process(PartId::new(1), Box::new(node)).unwrap();
        sim.run_to_quiescence(Duration::from_secs(1)).unwrap();
        assert!(*fired.lock().unwrap());
    }
}
