//! Assembly and execution of a whole protocol stack.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use std::sync::{Arc, Mutex};

use svckit_codec::PduRegistry;
use svckit_model::{Duration, PartId, Sap};
use svckit_netsim::{LinkConfig, QueueBackend, SimConfig, SimError, SimReport, Simulator};

use crate::counters::ProtoCounters;
use crate::entity::{ProtocolEntity, ProtocolNode, UserPart};
use crate::reliable::ReliabilityConfig;

/// Errors from stack assembly or execution.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum StackError {
    /// The underlying simulator rejected the configuration.
    Sim(SimError),
}

impl fmt::Display for StackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StackError::Sim(e) => write!(f, "simulator error: {e}"),
        }
    }
}

impl Error for StackError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            StackError::Sim(e) => Some(e),
        }
    }
}

impl From<SimError> for StackError {
    fn from(e: SimError) -> Self {
        StackError::Sim(e)
    }
}

/// One pending node of a [`StackBuilder`]: address, access point, user
/// part and protocol entity.
type PendingNode = (PartId, Sap, Box<dyn UserPart>, Box<dyn ProtocolEntity>);

/// Builder for a [`Stack`]: N protocol nodes over one lower-level service.
pub struct StackBuilder {
    seed: u64,
    link: LinkConfig,
    queue: QueueBackend,
    shards: u32,
    registry: Arc<PduRegistry>,
    reliability: Option<ReliabilityConfig>,
    nodes: Vec<PendingNode>,
}

impl fmt::Debug for StackBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StackBuilder")
            .field("seed", &self.seed)
            .field("nodes", &self.nodes.len())
            .finish_non_exhaustive()
    }
}

impl StackBuilder {
    /// Starts a stack sharing the given PDU registry.
    pub fn new(registry: PduRegistry) -> Self {
        StackBuilder {
            seed: 0,
            link: LinkConfig::default(),
            queue: QueueBackend::default(),
            shards: 1,
            registry: Arc::new(registry),
            reliability: None,
            nodes: Vec::new(),
        }
    }

    /// Sets the simulation seed (builder-style).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the lower-level service characteristics (builder-style).
    #[must_use]
    pub fn link(mut self, link: LinkConfig) -> Self {
        self.link = link;
        self
    }

    /// Selects the simulator event-queue backend (builder-style).
    #[must_use]
    pub fn queue_backend(mut self, backend: QueueBackend) -> Self {
        self.queue = backend;
        self
    }

    /// Sets the simulator shard count (builder-style); see
    /// [`svckit_netsim::SimConfig::shards`].
    #[must_use]
    pub fn shards(mut self, shards: u32) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Inserts a reliability sub-layer on every node (builder-style); use
    /// together with an unreliable [`LinkConfig`].
    #[must_use]
    pub fn reliability(mut self, config: ReliabilityConfig) -> Self {
        self.reliability = Some(config);
        self
    }

    /// Adds a node: a user part and its protocol entity serving `sap` at
    /// network address `part` (builder-style).
    #[must_use]
    pub fn node(
        mut self,
        part: PartId,
        sap: Sap,
        user: Box<dyn UserPart>,
        entity: Box<dyn ProtocolEntity>,
    ) -> Self {
        self.nodes.push((part, sap, user, entity));
        self
    }

    /// Assembles the simulator.
    ///
    /// # Errors
    ///
    /// Returns [`StackError::Sim`] when two nodes share a [`PartId`].
    pub fn build(self) -> Result<Stack, StackError> {
        let mut sim = Simulator::new(
            SimConfig::new(self.seed)
                .default_link(self.link)
                .queue_backend(self.queue)
                .shards(self.shards),
        );
        let mut counters = BTreeMap::new();
        for (part, sap, user, entity) in self.nodes {
            let mut node = ProtocolNode::new(sap, user, entity, Arc::clone(&self.registry));
            if let Some(cfg) = self.reliability {
                node = node.with_reliability(cfg);
            }
            counters.insert(part, node.counters());
            sim.add_process(part, Box::new(node))?;
        }
        Ok(Stack { sim, counters })
    }
}

/// An assembled protocol stack, ready to run.
pub struct Stack {
    sim: Simulator,
    counters: BTreeMap<PartId, Arc<Mutex<ProtoCounters>>>,
}

impl fmt::Debug for Stack {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Stack")
            .field("nodes", &self.counters.len())
            .finish_non_exhaustive()
    }
}

impl Stack {
    /// Runs until quiescence or until `max_elapsed` simulated time passes.
    /// Can be called repeatedly to extend the run.
    ///
    /// # Errors
    ///
    /// Returns [`StackError::Sim`] when the stack has no nodes.
    pub fn run_to_quiescence(&mut self, max_elapsed: Duration) -> Result<SimReport, StackError> {
        Ok(self.sim.run_to_quiescence(max_elapsed)?)
    }

    /// Counters of one node.
    pub fn node_counters(&self, part: PartId) -> Option<ProtoCounters> {
        self.counters.get(&part).map(|c| *c.lock().unwrap())
    }

    /// Sum of all nodes' counters.
    pub fn total_counters(&self) -> ProtoCounters {
        let mut total = ProtoCounters::default();
        for c in self.counters.values() {
            total.absorb(&c.lock().unwrap());
        }
        total
    }

    /// The node ids in the stack.
    pub fn parts(&self) -> Vec<PartId> {
        self.counters.keys().copied().collect()
    }

    /// Partitions two nodes (messages dropped both ways) until
    /// [`Stack::heal`]. Call between run slices to inject failures.
    pub fn partition(&mut self, a: PartId, b: PartId) {
        self.sim.partition(a, b);
    }

    /// Heals a partition created by [`Stack::partition`].
    pub fn heal(&mut self, a: PartId, b: PartId) {
        self.sim.heal(a, b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use svckit_codec::PduSchema;
    use svckit_model::{Value, ValueType};
    use svckit_netsim::TimerId;

    use crate::entity::{EntityCtx, UserCtx};
    use svckit_codec::Pdu;

    /// A trivial "relay" service: every `say` primitive at one SAP becomes a
    /// `heard` indication at every other SAP, relayed by a hub entity.
    struct Talker {
        rounds: u32,
        heard: u32,
    }
    impl UserPart for Talker {
        fn on_start(&mut self, ctx: &mut UserCtx<'_, '_>) {
            if self.rounds > 0 {
                ctx.set_timer(Duration::from_millis(1), TimerId(1));
            }
        }
        fn on_indication(&mut self, _: &mut UserCtx<'_, '_>, primitive: &str, _: Vec<Value>) {
            assert_eq!(primitive, "heard");
            self.heard += 1;
        }
        fn on_timer(&mut self, ctx: &mut UserCtx<'_, '_>, _: TimerId) {
            ctx.invoke("say", vec![Value::Id(ctx.sap().part().raw())]);
            self.rounds -= 1;
            if self.rounds > 0 {
                ctx.set_timer(Duration::from_millis(1), TimerId(1));
            }
        }
    }

    struct RelayEntity {
        peers: Vec<PartId>,
    }
    impl ProtocolEntity for RelayEntity {
        fn on_user_primitive(&mut self, ctx: &mut EntityCtx<'_, '_>, _: &str, args: Vec<Value>) {
            for peer in &self.peers {
                ctx.send_pdu(*peer, "say_pdu", &args).unwrap();
            }
        }
        fn on_pdu(&mut self, ctx: &mut EntityCtx<'_, '_>, _: PartId, pdu: Pdu) {
            ctx.deliver_to_user("heard", pdu.into_args());
        }
    }

    fn registry() -> PduRegistry {
        let mut r = PduRegistry::new();
        r.register(PduSchema::new(1, "say_pdu").field("who", ValueType::Id))
            .unwrap();
        r
    }

    fn build_stack(n: u64, reliability: Option<ReliabilityConfig>, link: LinkConfig) -> Stack {
        let mut builder = StackBuilder::new(registry()).seed(42).link(link);
        if let Some(cfg) = reliability {
            builder = builder.reliability(cfg);
        }
        for i in 1..=n {
            let peers: Vec<PartId> = (1..=n).filter(|&j| j != i).map(PartId::new).collect();
            builder = builder.node(
                PartId::new(i),
                Sap::new("talker", PartId::new(i)),
                Box::new(Talker {
                    rounds: 3,
                    heard: 0,
                }),
                Box::new(RelayEntity { peers }),
            );
        }
        builder.build().unwrap()
    }

    #[test]
    fn full_mesh_relay_runs_to_quiescence() {
        let mut stack = build_stack(4, None, LinkConfig::lan());
        let report = stack.run_to_quiescence(Duration::from_secs(5)).unwrap();
        assert!(report.is_quiescent());
        // 4 talkers × 3 rounds, each say → 3 peers hear it.
        assert_eq!(report.trace().count_of("say"), 12);
        assert_eq!(report.trace().count_of("heard"), 36);
        let totals = stack.total_counters();
        assert_eq!(totals.pdus_sent, 36);
        assert_eq!(totals.pdus_received, 36);
        assert_eq!(totals.decode_errors, 0);
    }

    #[test]
    fn per_node_counters_are_separate() {
        let mut stack = build_stack(3, None, LinkConfig::lan());
        stack.run_to_quiescence(Duration::from_secs(5)).unwrap();
        for part in stack.parts() {
            let c = stack.node_counters(part).unwrap();
            assert_eq!(c.pdus_sent, 6); // 3 rounds × 2 peers
        }
        assert!(stack.node_counters(PartId::new(99)).is_none());
    }

    #[test]
    fn reliability_recovers_all_messages_over_lossy_link() {
        let lossy = LinkConfig::lossy(Duration::from_millis(1), Duration::from_micros(100), 0.25);
        let mut stack = build_stack(
            3,
            Some(ReliabilityConfig::new(Duration::from_millis(8))),
            lossy,
        );
        let report = stack.run_to_quiescence(Duration::from_secs(30)).unwrap();
        assert!(report.is_quiescent());
        assert_eq!(report.trace().count_of("heard"), 18); // 3×3 rounds × 2 peers
        let totals = stack.total_counters();
        assert!(totals.retransmissions > 0, "expected some retransmissions");
        assert_eq!(totals.decode_errors, 0);
    }

    #[test]
    fn without_reliability_lossy_link_loses_messages() {
        let lossy = LinkConfig::lossy(Duration::from_millis(1), Duration::from_micros(100), 0.25);
        let mut stack = build_stack(3, None, lossy);
        let report = stack.run_to_quiescence(Duration::from_secs(30)).unwrap();
        assert!(report.trace().count_of("heard") < 18);
    }

    #[test]
    fn duplicate_parts_are_rejected() {
        let builder = StackBuilder::new(registry())
            .node(
                PartId::new(1),
                Sap::new("talker", PartId::new(1)),
                Box::new(Talker {
                    rounds: 0,
                    heard: 0,
                }),
                Box::new(RelayEntity { peers: vec![] }),
            )
            .node(
                PartId::new(1),
                Sap::new("talker", PartId::new(1)),
                Box::new(Talker {
                    rounds: 0,
                    heard: 0,
                }),
                Box::new(RelayEntity { peers: vec![] }),
            );
        assert!(matches!(
            builder.build(),
            Err(StackError::Sim(SimError::DuplicateNode(_)))
        ));
    }
}
