//! # svckit-protocol — the protocol-centred paradigm
//!
//! "In the protocol-centred paradigm, user parts interact locally with a
//! service (provider). A service is decomposed into protocol entities and a
//! lower level service, which interact in order to provide the required
//! service to user parts." (Section 2.)
//!
//! This crate is the runtime for that decomposition:
//!
//! * [`UserPart`] — the application behaviour above the service boundary; it
//!   only ever *invokes service primitives* and *receives indications*
//!   ([`UserCtx`]), never touches the network, and is therefore unaffected
//!   by the choice of protocol — the property Section 5 argues for ("the
//!   service shields the application from the way in which the service is
//!   implemented").
//! * [`ProtocolEntity`] — the behaviour below the boundary: it handles user
//!   primitives, exchanges schema-checked PDUs with peer entities via
//!   `svckit-codec`, and delivers indications back up ([`EntityCtx`]).
//! * [`ProtocolNode`] — one node of the distributed service provider: a user
//!   part, its protocol entity, and the PDU registry, wired onto a
//!   `svckit-netsim` node. Every primitive crossing the service boundary is
//!   recorded in the simulation trace, ready for conformance checking.
//! * [`ReliableLink`] — an optional stop-and-wait retransmission sub-layer
//!   that turns an unreliable lower-level service into a reliable in-order
//!   one, demonstrating the layering principle (and exercised by ablation
//!   A3 in DESIGN.md).
//! * [`StackBuilder`] — a harness that assembles many protocol nodes over a
//!   configured lower-level service and runs the whole stack to quiescence.
//!
//! See `svckit-floorctl` for the three floor-control protocols of Figure 6
//! built on these traits.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod counters;
mod entity;
mod harness;
mod reliable;

pub use counters::ProtoCounters;
pub use entity::{EntityCtx, ProtocolEntity, ProtocolNode, UserCtx, UserPart};
pub use harness::{Stack, StackBuilder, StackError};
pub use reliable::{ReliabilityConfig, ReliableLink};
