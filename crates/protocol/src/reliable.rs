//! Go-back-N reliability sub-layer.
//!
//! The paper's layering principle in action: a protocol that turns an
//! unreliable datagram service into a reliable, in-order one, transparently
//! to the protocol entities above. Per peer, a classic go-back-N scheme
//! with cumulative acknowledgements:
//!
//! * outgoing payloads are framed as `DATA(seq, bytes)`; up to `window`
//!   frames are in flight per peer, the rest queue;
//! * the receiver delivers in-sequence frames, discards out-of-order ones,
//!   and acknowledges cumulatively with `ACK(highest in-order seq)` —
//!   duplicates are suppressed and re-acknowledged;
//! * on timeout, every in-flight frame is retransmitted (go-back-N).
//!
//! A window of 1 degenerates to stop-and-wait; larger windows trade memory
//! and retransmission volume for throughput on high-latency links (see the
//! window ablation in the tests and EXPERIMENTS.md).

use std::collections::{HashMap, VecDeque};

use svckit_codec::{read_varint, write_varint};
use svckit_model::{Duration, PartId};
use svckit_netsim::{Context, Payload, TimerId, TraceCtx};

use crate::counters::ProtoCounters;

const FRAME_DATA: u8 = 0;
const FRAME_ACK: u8 = 1;

/// Configuration of the reliability sub-layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReliabilityConfig {
    retransmit_timeout: Duration,
    window: usize,
}

impl ReliabilityConfig {
    /// Creates a stop-and-wait configuration (window 1) with the given
    /// retransmission timeout.
    pub fn new(retransmit_timeout: Duration) -> Self {
        ReliabilityConfig {
            retransmit_timeout,
            window: 1,
        }
    }

    /// Sets the go-back-N send window (builder-style; clamped to ≥ 1).
    #[must_use]
    pub fn with_window(mut self, window: usize) -> Self {
        self.window = window.max(1);
        self
    }

    /// The retransmission timeout.
    pub fn retransmit_timeout(&self) -> Duration {
        self.retransmit_timeout
    }

    /// The send window.
    pub fn window(&self) -> usize {
        self.window
    }
}

impl Default for ReliabilityConfig {
    /// 50 ms timeout, window 1 — safe over the default LAN latency.
    fn default() -> Self {
        ReliabilityConfig::new(Duration::from_millis(50))
    }
}

#[derive(Debug, Default)]
struct PeerState {
    /// Sequence number of the next *new* frame.
    next_seq: u64,
    /// In-flight frames, oldest first: (seq, payload, causal context of
    /// the send that originated the frame — retransmissions and window
    /// refills stay on *that* request's trace, not on whatever dispatch
    /// happens to trigger them).
    inflight: VecDeque<(u64, Vec<u8>, Option<TraceCtx>)>,
    /// Payloads waiting for window space, with their originating context.
    backlog: VecDeque<(Vec<u8>, Option<TraceCtx>)>,
    /// Next in-order sequence number expected from this peer.
    expected: u64,
}

/// Per-node go-back-N reliability state over all peers.
#[derive(Debug)]
pub struct ReliableLink {
    config: ReliabilityConfig,
    timer_base: u64,
    peers: HashMap<PartId, PeerState>,
}

impl ReliableLink {
    /// Creates the sub-layer. `timer_base` is the start of the timer-id
    /// namespace reserved for it (timer id = base + peer id).
    pub fn new(config: ReliabilityConfig, timer_base: u64) -> Self {
        ReliableLink {
            config,
            timer_base,
            peers: HashMap::new(),
        }
    }

    fn timer_for(&self, peer: PartId) -> TimerId {
        TimerId(self.timer_base + peer.raw())
    }

    fn peer_for_timer(&self, timer: TimerId) -> Option<PartId> {
        timer.0.checked_sub(self.timer_base).map(PartId::new)
    }

    fn frame_data(seq: u64, payload: &[u8]) -> Vec<u8> {
        let mut frame = vec![FRAME_DATA];
        write_varint(&mut frame, seq);
        frame.extend_from_slice(payload);
        frame
    }

    fn frame_ack(cumulative: u64) -> Vec<u8> {
        let mut frame = vec![FRAME_ACK];
        write_varint(&mut frame, cumulative);
        frame
    }

    /// Sends `payload` reliably, in order, to `to`.
    pub fn send(&mut self, net: &mut Context<'_>, to: PartId, payload: Vec<u8>) {
        let timer = self.timer_for(to);
        let timeout = self.config.retransmit_timeout;
        let window = self.config.window;
        // Capture the context of the dispatch issuing the send; it is
        // pinned to the frame for its whole buffered life.
        let ctx = net.trace_ctx();
        let peer = self.peers.entry(to).or_default();
        if peer.inflight.len() < window {
            let seq = peer.next_seq;
            peer.next_seq += 1;
            net.send(to, Self::frame_data(seq, &payload));
            peer.inflight.push_back((seq, payload, ctx));
            if peer.inflight.len() == 1 {
                net.set_timer(timeout, timer);
            }
        } else {
            peer.backlog.push_back((payload, ctx));
        }
    }

    /// Handles a raw frame from `from`. Returns the deframed payload when an
    /// in-sequence data frame should be delivered upwards.
    pub fn on_raw(
        &mut self,
        net: &mut Context<'_>,
        from: PartId,
        frame: &[u8],
        counters: &mut ProtoCounters,
    ) -> Option<Payload> {
        let (&kind, rest) = frame.split_first()?;
        let (seq, used) = read_varint(rest).ok()?;
        let timer = self.timer_for(from);
        let timeout = self.config.retransmit_timeout;
        let window = self.config.window;
        match kind {
            FRAME_DATA => {
                let peer = self.peers.entry(from).or_default();
                if seq == peer.expected {
                    peer.expected += 1;
                    net.send(from, Self::frame_ack(seq));
                    Some(Payload::from(&rest[used..]))
                } else {
                    // Duplicate or out-of-order: suppress and re-acknowledge
                    // the highest in-order frame so the sender can resync.
                    if seq < peer.expected {
                        counters.duplicates_suppressed += 1;
                        svckit_obs::obs_count!("proto.duplicates_suppressed");
                    }
                    if peer.expected > 0 {
                        net.send(from, Self::frame_ack(peer.expected - 1));
                    }
                    None
                }
            }
            FRAME_ACK => {
                let peer = self.peers.entry(from).or_default();
                let before = peer.inflight.len();
                while peer
                    .inflight
                    .front()
                    .is_some_and(|(inflight_seq, _, _)| *inflight_seq <= seq)
                {
                    peer.inflight.pop_front();
                }
                let acked_something = peer.inflight.len() < before;
                // Refill the window from the backlog. Each frame departs
                // under the context of the send that queued it, not under
                // the ACK's context.
                while peer.inflight.len() < window {
                    let Some((payload, ctx)) = peer.backlog.pop_front() else {
                        break;
                    };
                    let next = peer.next_seq;
                    peer.next_seq += 1;
                    net.send_with_ctx(from, Self::frame_data(next, &payload), ctx, false);
                    peer.inflight.push_back((next, payload, ctx));
                }
                if peer.inflight.is_empty() {
                    net.cancel_timer(timer);
                } else if acked_something {
                    // Progress was made: restart the timer for the new
                    // oldest in-flight frame.
                    net.set_timer(timeout, timer);
                }
                None
            }
            _ => None, // unknown frame kind: ignore
        }
    }

    /// Handles a retransmission timer: go-back-N resends every in-flight
    /// frame. Returns `true` when the timer belonged to this sub-layer.
    pub fn on_timer(
        &mut self,
        net: &mut Context<'_>,
        timer: TimerId,
        counters: &mut ProtoCounters,
    ) -> bool {
        let Some(peer_id) = self.peer_for_timer(timer) else {
            return false;
        };
        let timeout = self.config.retransmit_timeout;
        let Some(peer) = self.peers.get_mut(&peer_id) else {
            return false;
        };
        if !peer.inflight.is_empty() {
            for (seq, payload, ctx) in &peer.inflight {
                counters.retransmissions += 1;
                svckit_obs::obs_count!("proto.retransmissions");
                svckit_obs::obs_event!(
                    "proto.retransmit",
                    "proto",
                    peer_id.raw(),
                    net.now().as_micros()
                );
                // Resend under the original send's context, flagged as a
                // retransmission so its transit is attributed separately.
                net.send_with_ctx(peer_id, Self::frame_data(*seq, payload), *ctx, true);
            }
            net.set_timer(timeout, timer);
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};
    use svckit_model::Instant;
    use svckit_netsim::{LinkConfig, Process, SimConfig, Simulator};

    /// Sends `n` numbered payloads reliably at start; collects deliveries.
    struct ReliableSender {
        to: PartId,
        n: u8,
        link: ReliableLink,
        counters: ProtoCounters,
    }
    impl Process for ReliableSender {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            for i in 0..self.n {
                self.link.send(ctx, self.to, vec![i]);
            }
        }
        fn on_message(&mut self, ctx: &mut Context<'_>, from: PartId, payload: Payload) {
            let _ = self.link.on_raw(ctx, from, &payload, &mut self.counters);
        }
        fn on_timer(&mut self, ctx: &mut Context<'_>, timer: TimerId) {
            assert!(self.link.on_timer(ctx, timer, &mut self.counters));
        }
    }

    struct ReliableReceiver {
        link: ReliableLink,
        got: Arc<Mutex<Vec<u8>>>,
        counters: ProtoCounters,
    }
    impl Process for ReliableReceiver {
        fn on_message(&mut self, ctx: &mut Context<'_>, from: PartId, payload: Payload) {
            if let Some(data) = self.link.on_raw(ctx, from, &payload, &mut self.counters) {
                self.got.lock().unwrap().push(data[0]);
            }
        }
        fn on_timer(&mut self, ctx: &mut Context<'_>, timer: TimerId) {
            self.link.on_timer(ctx, timer, &mut self.counters);
        }
    }

    fn run_over(link_cfg: LinkConfig, n: u8, seed: u64, window: usize) -> (Vec<u8>, Instant) {
        let got = Arc::new(Mutex::new(Vec::new()));
        let mut sim = Simulator::new(SimConfig::new(seed).default_link(link_cfg));
        let cfg = ReliabilityConfig::new(Duration::from_millis(10)).with_window(window);
        sim.add_process(
            PartId::new(1),
            Box::new(ReliableSender {
                to: PartId::new(2),
                n,
                link: ReliableLink::new(cfg, 1 << 63),
                counters: ProtoCounters::default(),
            }),
        )
        .unwrap();
        sim.add_process(
            PartId::new(2),
            Box::new(ReliableReceiver {
                link: ReliableLink::new(cfg, 1 << 63),
                got: Arc::clone(&got),
                counters: ProtoCounters::default(),
            }),
        )
        .unwrap();
        let report = sim.run_to_quiescence(Duration::from_secs(300)).unwrap();
        assert!(report.is_quiescent());
        let out = got.lock().unwrap().clone();
        (out, report.end_time())
    }

    #[test]
    fn delivers_in_order_over_perfect_link() {
        for window in [1, 4, 16] {
            let (got, _) = run_over(LinkConfig::perfect(Duration::from_millis(1)), 20, 1, window);
            assert_eq!(got, (0..20).collect::<Vec<u8>>(), "window {window}");
        }
    }

    #[test]
    fn delivers_exactly_once_in_order_over_lossy_link() {
        for window in [1, 4] {
            for seed in 1..=5 {
                let (got, _) = run_over(
                    LinkConfig::lossy(Duration::from_millis(1), Duration::from_micros(200), 0.3),
                    30,
                    seed,
                    window,
                );
                assert_eq!(
                    got,
                    (0..30).collect::<Vec<u8>>(),
                    "seed {seed} window {window}"
                );
            }
        }
    }

    #[test]
    fn delivers_exactly_once_over_duplicating_link() {
        let link = LinkConfig::reliable_datagram(Duration::from_millis(1), Duration::ZERO)
            .with_duplication(0.5);
        let (got, _) = run_over(link, 25, 7, 4);
        assert_eq!(got, (0..25).collect::<Vec<u8>>());
    }

    #[test]
    fn survives_reordering_links() {
        // Heavy jitter on an unordered link forces out-of-order arrivals;
        // go-back-N must still deliver in order exactly once.
        let link =
            LinkConfig::reliable_datagram(Duration::from_millis(1), Duration::from_millis(8));
        for window in [1, 8] {
            let (got, _) = run_over(link.clone(), 40, 3, window);
            assert_eq!(got, (0..40).collect::<Vec<u8>>(), "window {window}");
        }
    }

    #[test]
    fn larger_window_completes_bursts_faster_on_long_links() {
        // 20 ms one-way latency: stop-and-wait needs ~40 ms per frame;
        // a window of 8 pipelines them.
        let link = LinkConfig::perfect(Duration::from_millis(20));
        let (_, t1) = run_over(link.clone(), 30, 5, 1);
        let (_, t8) = run_over(link, 30, 5, 8);
        assert!(
            t8.as_micros() * 4 < t1.as_micros(),
            "window 8 ({t8}) should be far faster than stop-and-wait ({t1})"
        );
    }

    #[test]
    fn loss_costs_time() {
        let (_, t_perfect) = run_over(LinkConfig::perfect(Duration::from_millis(1)), 20, 3, 1);
        let (_, t_lossy) = run_over(
            LinkConfig::lossy(Duration::from_millis(1), Duration::ZERO, 0.4),
            20,
            3,
            1,
        );
        assert!(
            t_lossy > t_perfect,
            "lossy {t_lossy} should exceed perfect {t_perfect}"
        );
    }

    #[test]
    fn frame_encoding_roundtrips() {
        let data = ReliableLink::frame_data(300, b"xyz");
        assert_eq!(data[0], FRAME_DATA);
        let (seq, used) = read_varint(&data[1..]).unwrap();
        assert_eq!(seq, 300);
        assert_eq!(&data[1 + used..], b"xyz");
        let ack = ReliableLink::frame_ack(7);
        assert_eq!(ack, vec![FRAME_ACK, 7]);
    }

    #[test]
    fn window_is_clamped_to_at_least_one() {
        let cfg = ReliabilityConfig::new(Duration::from_millis(1)).with_window(0);
        assert_eq!(cfg.window(), 1);
        assert_eq!(ReliabilityConfig::default().window(), 1);
    }
}
