//! Aggregation of cell outcomes into per-group summaries.
//!
//! A *group* is one (target, variation, campaign) combination; its cells
//! differ only by seed. Summaries pool the raw per-grant latencies across
//! the group's cells (rather than averaging per-cell percentiles, which
//! would understate the tail) and derive transport and scattering ratios
//! from group totals.

use svckit::model::Duration;

use crate::exec::CellResult;

/// Rolled-up statistics for one (target, variation, campaign) group.
#[derive(Debug, Clone)]
pub struct GroupSummary {
    /// Target label (solution name or `psm:<platform>`).
    pub target: String,
    /// Variation label.
    pub variation: String,
    /// Campaign label (`"none"` when fault-free).
    pub campaign: String,
    /// Number of cells (seeds) in the group.
    pub cells: usize,
    /// Cells whose workload completed within the cap.
    pub completed: usize,
    /// Cells whose trace conformed to the service definition.
    pub conformant: usize,
    /// Total conformance violations across the group.
    pub violations: usize,
    /// Total requests across the group.
    pub requests: u64,
    /// Total grants across the group.
    pub grants: u64,
    /// Mean grant latency over the pooled latencies.
    pub latency_mean: Duration,
    /// Median of the pooled latencies.
    pub latency_p50: Duration,
    /// 90th percentile of the pooled latencies.
    pub latency_p90: Duration,
    /// 99th percentile of the pooled latencies.
    pub latency_p99: Duration,
    /// Mean Jain fairness index across cells.
    pub fairness_mean: f64,
    /// Worst Jain fairness index across cells.
    pub fairness_min: f64,
    /// Total transport messages across the group.
    pub transport_messages: u64,
    /// Total transport payload bytes across the group.
    pub transport_bytes: u64,
    /// Group-total transport messages per group-total grant.
    pub msgs_per_grant: f64,
    /// Group-total payload bytes per group-total grant.
    pub bytes_per_grant: f64,
    /// Group-total scattering ratio (app events over all coordination
    /// events), the Figure 7 metric.
    pub scattering: f64,
}

fn quantile(sorted: &[Duration], q: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((sorted.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
    sorted[idx]
}

/// Folds cell results (already in spec order) into group summaries, in
/// first-appearance order.
pub fn aggregate(results: &[CellResult]) -> Vec<GroupSummary> {
    let mut groups: Vec<GroupSummary> = Vec::new();
    let mut pooled: Vec<Vec<Duration>> = Vec::new();
    let mut fairness: Vec<Vec<f64>> = Vec::new();
    let mut events: Vec<(u64, u64)> = Vec::new(); // (app, infra) totals

    for result in results {
        let key = (
            result.target_label.as_str(),
            result.variation_label.as_str(),
            result.campaign_label.as_str(),
        );
        let at = groups
            .iter()
            .position(|g| (g.target.as_str(), g.variation.as_str(), g.campaign.as_str()) == key)
            .unwrap_or_else(|| {
                groups.push(GroupSummary {
                    target: result.target_label.clone(),
                    variation: result.variation_label.clone(),
                    campaign: result.campaign_label.clone(),
                    cells: 0,
                    completed: 0,
                    conformant: 0,
                    violations: 0,
                    requests: 0,
                    grants: 0,
                    latency_mean: Duration::ZERO,
                    latency_p50: Duration::ZERO,
                    latency_p90: Duration::ZERO,
                    latency_p99: Duration::ZERO,
                    fairness_mean: 0.0,
                    fairness_min: 0.0,
                    transport_messages: 0,
                    transport_bytes: 0,
                    msgs_per_grant: 0.0,
                    bytes_per_grant: 0.0,
                    scattering: 0.0,
                });
                pooled.push(Vec::new());
                fairness.push(Vec::new());
                events.push((0, 0));
                groups.len() - 1
            });

        let g = &mut groups[at];
        let o = &result.outcome;
        g.cells += 1;
        g.completed += usize::from(o.completed);
        g.conformant += usize::from(o.conformant);
        g.violations += o.violations;
        g.requests += o.floor.requests();
        g.grants += o.floor.grants();
        g.transport_messages += o.transport_messages;
        g.transport_bytes += o.transport_bytes;
        events[at].0 += o.app_events;
        events[at].1 += o.infra_events;
        pooled[at].extend_from_slice(o.floor.latencies());
        fairness[at].push(o.floor.fairness());
    }

    for (at, g) in groups.iter_mut().enumerate() {
        let lat = &mut pooled[at];
        lat.sort_unstable();
        g.latency_mean = if lat.is_empty() {
            Duration::ZERO
        } else {
            let total: u64 = lat.iter().map(|d| d.as_micros()).sum();
            Duration::from_micros(total / lat.len() as u64)
        };
        g.latency_p50 = quantile(lat, 0.5);
        g.latency_p90 = quantile(lat, 0.9);
        g.latency_p99 = quantile(lat, 0.99);

        let fair = &fairness[at];
        g.fairness_mean = fair.iter().sum::<f64>() / fair.len().max(1) as f64;
        g.fairness_min = fair.iter().copied().fold(f64::INFINITY, f64::min);
        if !g.fairness_min.is_finite() {
            g.fairness_min = 0.0;
        }

        let (app, infra) = events[at];
        g.scattering = if app + infra == 0 {
            0.0
        } else {
            app as f64 / (app + infra) as f64
        };
        g.msgs_per_grant = if g.grants == 0 {
            0.0
        } else {
            g.transport_messages as f64 / g.grants as f64
        };
        g.bytes_per_grant = if g.grants == 0 {
            0.0
        } else {
            g.transport_bytes as f64 / g.grants as f64
        };
    }

    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::run_sweep;
    use crate::spec::SweepSpec;
    use svckit::floorctl::{RunParams, Solution};

    #[test]
    fn groups_pool_seeds_and_keep_spec_order() {
        let spec = SweepSpec::new("agg")
            .solutions([Solution::MwCallback, Solution::ProtoCallback])
            .variation("small", RunParams::default().subscribers(2).rounds(1))
            .seeds([1, 2]);
        let report = run_sweep(&spec, 1);
        assert_eq!(report.results.len(), 4);
        assert_eq!(report.groups.len(), 2);
        assert_eq!(report.groups[0].target, "mw-callback");
        assert_eq!(report.groups[1].target, "proto-callback");
        for g in &report.groups {
            assert_eq!(g.cells, 2);
            assert_eq!(g.completed, 2);
            assert_eq!(g.conformant, 2);
            assert_eq!(g.grants, 4); // 2 subscribers × 1 round × 2 seeds
            assert!(g.latency_p50 <= g.latency_p99);
            assert!(g.msgs_per_grant > 0.0);
            assert!(g.fairness_min <= g.fairness_mean);
            assert!(g.scattering >= 0.0 && g.scattering <= 1.0);
        }
    }

    #[test]
    fn quantile_handles_edges() {
        assert_eq!(quantile(&[], 0.5), Duration::ZERO);
        let one = [Duration::from_micros(7)];
        assert_eq!(quantile(&one, 0.0), Duration::from_micros(7));
        assert_eq!(quantile(&one, 1.0), Duration::from_micros(7));
    }
}
