//! The parallel cell executor.
//!
//! Cells are independent by construction — each builds its own simulator,
//! middleware system or protocol stack, and RNG stream from the cell's
//! seed. Workers construct *and* run each cell entirely on their own
//! thread and send back only the `RunOutcome`: a cell is the unit of
//! scheduling, so nothing is gained by moving a half-built system across
//! threads (even though, since the sharded-core work made every process
//! `Send`, they now could be).
//!
//! Work distribution is a single atomic cursor over the expanded cell
//! list; results are placed into their cell's slot and merged in spec
//! order, so the report (and its JSON) is byte-identical for any worker
//! count.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::time::{Duration as WallDuration, Instant as WallInstant};

use svckit::floorctl::{
    run_middleware_deployment_with, run_solution_with, RunOptions, RunOutcome, Solution,
};
use svckit::mda::{catalog, transform, TransformPolicy};
use svckit_obs::{with_recorder, Recorder};

use crate::agg::{aggregate, GroupSummary};
use crate::spec::{Cell, CellTarget, SweepSpec};

/// One executed cell: its grid point, display labels, and the measured
/// outcome.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// The grid point this result belongs to.
    pub cell: Cell,
    /// Target label (solution name or `psm:<platform>`).
    pub target_label: String,
    /// Variation label.
    pub variation_label: String,
    /// Campaign label (`"none"` when fault-free).
    pub campaign_label: String,
    /// The measured run.
    pub outcome: RunOutcome,
    /// Everything the instrumentation sites recorded while this cell ran.
    ///
    /// Each cell runs entirely on one worker thread with its own
    /// [`Recorder`] installed, and cells are merged in spec order — so
    /// per-cell obs output is byte-identical across `--threads` values.
    /// Empty (but present) when the `obs` feature is off.
    pub obs: Recorder,
    /// Wall-clock time the worker spent building and running this cell.
    ///
    /// Reported in the `*.timing.json` sidecar only — never in the
    /// canonical sweep JSON, which must stay byte-identical across worker
    /// counts and machines.
    pub wall: WallDuration,
}

/// Everything a sweep produced: per-cell results in spec order, per-group
/// summaries, and execution metadata.
///
/// The metadata (`threads`, `wall`) is reported on stdout only — it is
/// deliberately excluded from [`SweepReport::to_json`] so the JSON stays
/// byte-identical across worker counts and machines.
#[derive(Debug)]
pub struct SweepReport {
    /// The spec's name.
    pub name: String,
    /// Worker threads actually used.
    pub threads: usize,
    /// Wall-clock time of the executor (not part of the JSON).
    pub wall: WallDuration,
    /// Cell results, in spec order.
    pub results: Vec<CellResult>,
    /// Group summaries, in first-appearance (spec) order.
    pub groups: Vec<GroupSummary>,
}

/// Number of worker threads to use when the caller does not say:
/// the machine's available parallelism.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

fn run_cell(spec: &SweepSpec, cell: &Cell) -> RunOutcome {
    let variation = &spec.variations[cell.variation];
    let mut params = variation.params.clone().seed(cell.seed);
    if let Some(backend) = spec.queue {
        params = params.queue_backend(backend);
    }
    if let Some(shards) = spec.shards {
        params = params.shards(shards);
    }
    if let Some(engine) = spec.engine {
        params = params.engine(engine);
    }
    if let Some(symmetry) = spec.symmetry {
        params = params.symmetry(symmetry);
    }
    if let Some(backend) = spec.backend {
        params = params.backend(backend);
    }
    let faults = match cell.campaign {
        Some(i) => spec.campaigns[i].events.clone(),
        None => Vec::new(),
    };
    match &spec.targets[cell.target] {
        CellTarget::Solution(solution) => {
            let options = RunOptions {
                reliability: variation.reliability,
                faults,
            };
            run_solution_with(*solution, &params, &options)
        }
        CellTarget::Platform(name) => {
            let platform = catalog::all_platforms()
                .into_iter()
                .find(|p| p.name() == name)
                .unwrap_or_else(|| panic!("unknown catalog platform {name:?} in sweep spec"));
            let psm = transform(
                &catalog::floor_control_pim(),
                &platform,
                TransformPolicy::RecursiveServiceDesign,
            )
            .unwrap_or_else(|e| panic!("transform to {name} failed: {e}"));
            let (system, label) = match psm.platform().class() {
                svckit::mda::PlatformClass::RpcBased => (
                    svckit::floorctl::mw::callback::deploy(&params),
                    Solution::MwCallback,
                ),
                svckit::mda::PlatformClass::Messaging => (
                    svckit::floorctl::mw::queue::deploy_on(&params, psm.platform().name()),
                    Solution::MwQueue,
                ),
            };
            run_middleware_deployment_with(system, label, &params, &faults)
        }
    }
}

/// Runs every cell of `spec` on up to `threads` scoped workers and merges
/// the results in spec order.
///
/// `threads = 1` is exactly the serial runner; any larger value changes
/// only wall-clock time, never the report contents.
pub fn run_sweep(spec: &SweepSpec, threads: usize) -> SweepReport {
    let cells = spec.cells();
    let threads = threads.clamp(1, cells.len().max(1));
    let started = WallInstant::now();

    let cursor = AtomicUsize::new(0);
    type CellSlot = (RunOutcome, Recorder, WallDuration);
    let (tx, rx) = mpsc::channel::<(usize, CellSlot)>();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let tx = tx.clone();
            let cursor = &cursor;
            let cells = &cells;
            let spec = &spec;
            scope.spawn(move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= cells.len() {
                    break;
                }
                let cell_started = WallInstant::now();
                // One recorder per cell, installed thread-locally: every
                // obs site the cell touches records here and nowhere
                // else, keeping capture independent of worker count.
                let (outcome, obs) = with_recorder(Recorder::new(), || run_cell(spec, &cells[i]));
                if tx
                    .send((i, (outcome, obs, cell_started.elapsed())))
                    .is_err()
                {
                    break;
                }
            });
        }
    });
    drop(tx);

    let mut slots: Vec<Option<CellSlot>> = cells.iter().map(|_| None).collect();
    for (i, slot) in rx {
        slots[i] = Some(slot);
    }

    let results: Vec<CellResult> = cells
        .iter()
        .zip(slots)
        .map(|(cell, slot)| {
            let (outcome, obs, wall) = slot.expect("every scheduled cell sends exactly one result");
            CellResult {
                cell: *cell,
                target_label: spec.targets[cell.target].to_string(),
                variation_label: spec.variations[cell.variation].label.clone(),
                campaign_label: spec.campaign_label(cell.campaign).to_string(),
                outcome,
                obs,
                wall,
            }
        })
        .collect();

    let groups = aggregate(&results);
    SweepReport {
        name: spec.name.clone(),
        threads,
        wall: started.elapsed(),
        results,
        groups,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use svckit::floorctl::RunParams;

    fn tiny() -> RunParams {
        RunParams::default().subscribers(2).resources(1).rounds(1)
    }

    #[test]
    fn serial_and_parallel_reports_agree() {
        let spec = SweepSpec::new("exec")
            .solutions([Solution::MwCallback, Solution::ProtoPolling])
            .variation("tiny", tiny())
            .seeds([3, 4, 5]);
        let serial = run_sweep(&spec, 1);
        let parallel = run_sweep(&spec, 4);
        assert_eq!(serial.results.len(), parallel.results.len());
        for (a, b) in serial.results.iter().zip(&parallel.results) {
            assert_eq!(a.cell, b.cell);
            assert_eq!(a.outcome.trace, b.outcome.trace);
            assert_eq!(a.outcome.transport_messages, b.outcome.transport_messages);
        }
        assert_eq!(serial.threads, 1);
        assert!(parallel.threads > 1);
    }

    #[test]
    fn platform_targets_run_through_the_mda_trajectory() {
        let spec = SweepSpec::new("psm")
            .platform("corba-like")
            .platform("jms-like")
            .variation("tiny", tiny());
        let report = run_sweep(&spec, 2);
        assert_eq!(report.results.len(), 2);
        assert_eq!(report.results[0].target_label, "psm:corba-like");
        assert_eq!(report.results[1].target_label, "psm:jms-like");
        for r in &report.results {
            assert!(r.outcome.completed, "{} did not complete", r.target_label);
            assert!(r.outcome.conformant);
        }
        // Message counts tie across platform classes (the broker hop
        // replaces the RPC reply); the indirection costs latency instead.
        assert!(
            report.groups[1].latency_mean > report.groups[0].latency_mean,
            "jms {} vs corba {}",
            report.groups[1].latency_mean,
            report.groups[0].latency_mean
        );
    }

    #[test]
    fn thread_count_is_clamped_to_cell_count() {
        let spec = SweepSpec::new("one")
            .solutions([Solution::MwCallback])
            .variation("tiny", tiny());
        let report = run_sweep(&spec, 64);
        assert_eq!(report.threads, 1);
    }
}
