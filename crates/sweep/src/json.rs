//! JSON emission for sweep artifacts.
//!
//! The streaming [`JsonWriter`] itself (and the flat reader the perf gate
//! uses) moved to `svckit-obs` — the lowest layer that emits JSON — and
//! is re-exported here so existing consumers keep their import paths.
//! This module keeps the one writer that needs the floor-control domain:
//! the [`RunOutcome`] summary block.

pub use svckit_obs::json::{parse_flat_numbers, JsonWriter};

use svckit::floorctl::RunOutcome;

/// Writes the compact JSON summary form of a [`RunOutcome`] as one object.
///
/// Every field is deterministic for a fixed seed: the trace itself is
/// deliberately omitted (it is checked, not serialized), latencies are
/// integer microseconds, and derived ratios use fixed-decimal formatting.
pub fn write_outcome(w: &mut JsonWriter, outcome: &RunOutcome) {
    w.begin_object();
    w.key("solution").string(&outcome.solution.to_string());
    w.key("completed").boolean(outcome.completed);
    w.key("conformant").boolean(outcome.conformant);
    w.key("violations").uint(outcome.violations as u64);
    w.key("requests").uint(outcome.floor.requests());
    w.key("grants").uint(outcome.floor.grants());
    w.key("frees").uint(outcome.floor.frees());
    w.key("outstanding_at_end")
        .uint(outcome.floor.outstanding_at_end());
    w.key("latency_us").begin_object();
    w.key("mean").uint(outcome.floor.mean_latency().as_micros());
    w.key("p50")
        .uint(outcome.floor.median_latency().as_micros());
    w.key("p90")
        .uint(outcome.floor.latency_quantile(0.9).as_micros());
    w.key("p99").uint(outcome.floor.p99_latency().as_micros());
    w.end_object();
    w.key("fairness").float(outcome.floor.fairness(), 4);
    w.key("end_time_us").uint(outcome.end_time.as_micros());
    w.key("transport_messages").uint(outcome.transport_messages);
    w.key("transport_bytes").uint(outcome.transport_bytes);
    w.key("app_events").uint(outcome.app_events);
    w.key("infra_events").uint(outcome.infra_events);
    w.key("msgs_per_grant")
        .float(outcome.messages_per_grant(), 3);
    w.key("scattering").float(outcome.scattering(), 3);
    w.end_object();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_summary_is_valid_flat_readable_json() {
        let outcome = svckit::floorctl::run_solution(
            svckit::floorctl::Solution::MwCallback,
            &svckit::floorctl::RunParams::default()
                .subscribers(2)
                .rounds(1),
        );
        let mut w = JsonWriter::pretty();
        write_outcome(&mut w, &outcome);
        let text = w.finish();
        assert!(text.contains("\"solution\": \"mw-callback\""));
        assert!(text.contains("\"completed\": true"));
        assert!(text.contains("\"outstanding_at_end\": 0"));
        let numbers = parse_flat_numbers(&text);
        assert!(numbers.iter().any(|(k, v)| k == "grants" && *v == 2.0));
    }
}
