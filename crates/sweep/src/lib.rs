//! # svckit-sweep — deterministic parallel experiment sweeps
//!
//! Every "result" in this reproduction is a measured experiment over the
//! floor-control service: a grid of solutions (or MDA platform targets) ×
//! workload variations × seeds × optional fault campaigns. This crate is
//! the harness that runs such grids:
//!
//! - [`SweepSpec`] declares the grid (builder-style, no I/O);
//! - [`run_sweep`] executes the cells on `std::thread::scope` workers —
//!   one RNG per cell, results merged in spec order, so the output for
//!   `threads = N` is **byte-identical** to `threads = 1`;
//! - [`aggregate`] rolls cell outcomes into per-group summaries
//!   (completion/conformance rollups, pooled latency percentiles,
//!   fairness, transport cost, Figure 7 scattering);
//! - [`SweepReport::print_table`] / [`SweepReport::write_json`] emit the
//!   human and machine forms (`SWEEP_*.json` via the shared dependency-free
//!   [`JsonWriter`]).
//!
//! The experiment binaries in `svckit-bench` (`exp_fig4_middleware`,
//! `exp_fig6_protocol`, `exp_fig7_scattering`, `exp_paradigms`,
//! `exp_platform_selection`, `soak`) all run through this harness.
//!
//! # Example
//!
//! ```
//! use svckit::floorctl::{RunParams, Solution};
//! use svckit_sweep::{run_sweep, SweepSpec};
//!
//! let spec = SweepSpec::new("doc")
//!     .solutions([Solution::MwCallback, Solution::ProtoCallback])
//!     .variation("tiny", RunParams::default().subscribers(2).rounds(1))
//!     .seeds([1, 2]);
//! let report = run_sweep(&spec, 2);
//! assert_eq!(report.results.len(), 4);
//! assert!(report.groups.iter().all(|g| g.conformant == g.cells));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agg;
pub mod exec;
pub mod json;
pub mod report;
pub mod spec;

pub use agg::{aggregate, GroupSummary};
pub use exec::{default_threads, run_sweep, CellResult, SweepReport};
pub use json::{parse_flat_numbers, write_outcome, JsonWriter};
pub use report::{
    backend_flag, engine_flag, flag_usize, flag_value, fmt_f, obs_flags, print_header, print_row,
    queue_backend_flag, shards_flag, symmetry_flag, trace_flags, verbosity, ObsFormat, TraceFlags,
    Verbosity,
};
pub use spec::{Cell, CellTarget, FaultCampaign, SweepSpec, Variation};
pub use svckit_obs::{chrome_trace, LddStats, PorStats, Recorder, SymStats};
