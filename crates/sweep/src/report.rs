//! Rendering: text tables for humans, `SWEEP_*.json` for machines, the
//! obs sinks (JSONL and Chrome trace), and the tiny CLI-flag parser the
//! experiment binaries share.

use svckit_obs::{
    percentile_us, trace_trees, JsonWriter as ObsJsonWriter, Recorder, RequestBreakdown,
};

use crate::exec::{CellResult, SweepReport};
use crate::json::{write_outcome, JsonWriter};

/// Prints a row of fixed-width columns.
pub fn print_row(cells: &[String], widths: &[usize]) {
    let mut line = String::new();
    for (cell, width) in cells.iter().zip(widths) {
        line.push_str(&format!("{cell:>width$}  "));
    }
    println!("{}", line.trim_end());
}

/// Prints a header row followed by a rule.
pub fn print_header(cells: &[&str], widths: &[usize]) {
    print_row(
        &cells.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
        widths,
    );
    let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
    println!("{}", "-".repeat(total));
}

/// Formats a `f64` with three decimals.
pub fn fmt_f(value: f64) -> String {
    format!("{value:.3}")
}

impl SweepReport {
    /// Prints the per-group summary table to stdout.
    pub fn print_table(&self) {
        let widths = [16, 14, 12, 5, 5, 5, 7, 9, 9, 8, 10, 7];
        print_header(
            &[
                "target",
                "variation",
                "campaign",
                "cells",
                "ok",
                "conf",
                "grants",
                "p50-lat",
                "p99-lat",
                "fairness",
                "msgs/grant",
                "scatter",
            ],
            &widths,
        );
        for g in &self.groups {
            print_row(
                &[
                    g.target.clone(),
                    g.variation.clone(),
                    g.campaign.clone(),
                    g.cells.to_string(),
                    g.completed.to_string(),
                    g.conformant.to_string(),
                    g.grants.to_string(),
                    g.latency_p50.to_string(),
                    g.latency_p99.to_string(),
                    fmt_f(g.fairness_mean),
                    fmt_f(g.msgs_per_grant),
                    fmt_f(g.scattering),
                ],
                &widths,
            );
        }
    }

    /// The machine-readable form of the whole sweep.
    ///
    /// Contains only deterministic data: no wall-clock, no thread count —
    /// `threads=N` output is byte-identical to `threads=1` (the golden
    /// test pins this). Per-cell *virtual* (simulated) time is
    /// deterministic and therefore included; per-cell *wall* time lives in
    /// the [`SweepReport::timing_json`] sidecar instead.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::pretty();
        w.begin_object();
        w.key("sweep").string(&self.name);
        w.key("cells").begin_array();
        for r in &self.results {
            w.begin_object();
            w.key("target").string(&r.target_label);
            w.key("variation").string(&r.variation_label);
            w.key("campaign").string(&r.campaign_label);
            w.key("seed").uint(r.cell.seed);
            w.key("virtual_us").uint(r.outcome.end_time.as_micros());
            w.key("outcome");
            write_outcome(&mut w, &r.outcome);
            w.end_object();
        }
        w.end_array();
        w.key("groups").begin_array();
        for g in &self.groups {
            w.begin_object();
            w.key("target").string(&g.target);
            w.key("variation").string(&g.variation);
            w.key("campaign").string(&g.campaign);
            w.key("cells").uint(g.cells as u64);
            w.key("completed").uint(g.completed as u64);
            w.key("conformant").uint(g.conformant as u64);
            w.key("violations").uint(g.violations as u64);
            w.key("requests").uint(g.requests);
            w.key("grants").uint(g.grants);
            w.key("latency_us").begin_object();
            w.key("mean").uint(g.latency_mean.as_micros());
            w.key("p50").uint(g.latency_p50.as_micros());
            w.key("p90").uint(g.latency_p90.as_micros());
            w.key("p99").uint(g.latency_p99.as_micros());
            w.end_object();
            w.key("fairness_mean").float(g.fairness_mean, 4);
            w.key("fairness_min").float(g.fairness_min, 4);
            w.key("transport_messages").uint(g.transport_messages);
            w.key("transport_bytes").uint(g.transport_bytes);
            w.key("msgs_per_grant").float(g.msgs_per_grant, 3);
            w.key("bytes_per_grant").float(g.bytes_per_grant, 3);
            w.key("scattering").float(g.scattering, 3);
            w.end_object();
        }
        w.end_array();
        w.end_object();
        w.finish()
    }

    /// The wall-clock sidecar: per-cell wall and virtual times plus the
    /// executor metadata.
    ///
    /// Deliberately a *separate* file (`<out>.timing.json`): wall-clock
    /// numbers differ between runs, machines and worker counts, so they
    /// can never live in the canonical sweep JSON, whose byte-identity
    /// across `--threads` values is golden-tested and CI-`cmp`'d.
    pub fn timing_json(&self) -> String {
        let mut w = JsonWriter::pretty();
        w.begin_object();
        w.key("sweep").string(&self.name);
        w.key("threads").uint(self.threads as u64);
        w.key("wall_ms").float(self.wall.as_secs_f64() * 1e3, 3);
        w.key("cells").begin_array();
        for r in &self.results {
            w.begin_object();
            w.key("target").string(&r.target_label);
            w.key("variation").string(&r.variation_label);
            w.key("campaign").string(&r.campaign_label);
            w.key("seed").uint(r.cell.seed);
            w.key("wall_ms").float(r.wall.as_secs_f64() * 1e3, 3);
            w.key("virtual_us").uint(r.outcome.end_time.as_micros());
            w.end_object();
        }
        w.end_array();
        w.end_object();
        w.finish()
    }

    /// Writes [`SweepReport::to_json`] to `path`, the wall-clock sidecar
    /// ([`SweepReport::timing_json`]) next to it, and logs the execution
    /// metadata (cells, threads, wall-clock) to stdout.
    ///
    /// # Panics
    ///
    /// Panics when either file cannot be written.
    pub fn write_json(&self, path: &str) {
        std::fs::write(path, self.to_json()).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        let timing_path = match path.strip_suffix(".json") {
            Some(stem) => format!("{stem}.timing.json"),
            None => format!("{path}.timing.json"),
        };
        std::fs::write(&timing_path, self.timing_json())
            .unwrap_or_else(|e| panic!("cannot write {timing_path}: {e}"));
        println!(
            "wrote {path} + {timing_path} ({} cells, {} threads, {:.2}s wall)",
            self.results.len(),
            self.threads,
            self.wall.as_secs_f64()
        );
    }
}

/// Stable identity of a cell in obs output: `target/variation/campaign/
/// seedN`. Purely spec-derived, so it never depends on worker count.
fn cell_scope(r: &CellResult) -> String {
    format!(
        "{}/{}/{}/seed{}",
        r.target_label, r.variation_label, r.campaign_label, r.cell.seed
    )
}

/// The obs sink format selected by `--obs-format`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObsFormat {
    /// One compact JSON object per line: events, counters, histograms,
    /// links — the machine-diffable form (CI `cmp`s it across thread
    /// counts and repeated seeds).
    Jsonl,
    /// Chrome trace-event JSON, loadable in Perfetto or
    /// `chrome://tracing` (one "process" per cell, one track per node).
    Chrome,
}

impl SweepReport {
    /// The JSONL obs stream: every cell's records in spec order, each
    /// line tagged with the cell's scope label. Deterministic —
    /// byte-identical across `--threads` values and across repeated runs
    /// of the same seed (virtual timestamps only).
    pub fn obs_jsonl(&self) -> String {
        let mut out = String::new();
        for r in &self.results {
            out.push_str(&r.obs.jsonl(&cell_scope(r)));
        }
        out
    }

    /// The Chrome trace form of the whole sweep: cell index = pid, node
    /// id = tid, virtual microseconds on the timeline.
    pub fn obs_chrome(&self) -> String {
        let scopes: Vec<String> = self.results.iter().map(cell_scope).collect();
        svckit_obs::chrome_trace(
            self.results
                .iter()
                .zip(&scopes)
                .enumerate()
                .map(|(i, (r, s))| (i as u64, s.as_str(), &r.obs)),
        )
    }

    /// The canonical per-cell metric blocks (no timeline): one JSON
    /// object per cell with its aggregate counters/histograms/links, in
    /// spec order. The golden tests pin this byte-identical across
    /// worker counts.
    pub fn obs_blocks_json(&self) -> String {
        let mut w = ObsJsonWriter::pretty();
        w.begin_object();
        w.key("sweep").string(&self.name);
        w.key("obs_sites_enabled")
            .boolean(svckit_obs::sites_enabled());
        w.key("cells").begin_array();
        for r in &self.results {
            w.begin_object();
            w.key("scope").string(&cell_scope(r));
            w.key("obs");
            r.obs.write_block(&mut w);
            w.end_object();
        }
        w.end_array();
        w.end_object();
        w.finish()
    }

    /// All cell recorders merged into one, in spec order.
    pub fn obs_total(&self) -> Recorder {
        let mut total = Recorder::new();
        for r in &self.results {
            total.absorb(&r.obs);
        }
        total
    }

    /// Writes the selected obs sink to `path`.
    ///
    /// # Panics
    ///
    /// Panics when the file cannot be written.
    pub fn write_obs(&self, path: &str, format: ObsFormat) {
        let text = match format {
            ObsFormat::Jsonl => self.obs_jsonl(),
            ObsFormat::Chrome => self.obs_chrome(),
        };
        std::fs::write(path, text).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    }
}

/// The causal-trace outputs requested on the command line
/// (`--trace-out` / `--trace-summary`); see [`trace_flags`].
#[derive(Debug, Clone)]
pub struct TraceFlags {
    /// `--trace-out <path>`: the canonically ordered Chrome trace with
    /// cross-node flow events (Perfetto-loadable).
    pub out: Option<String>,
    /// `--trace-summary <path>`: the critical-path latency report
    /// (`TRACE_summary.json`).
    pub summary: Option<String>,
}

/// Parses `--trace-out <path>` / `--trace-summary <path>`; `None` when
/// neither was requested. Either flag alone is fine.
pub fn trace_flags(args: &[String]) -> Option<TraceFlags> {
    let out = flag_value(args, "trace-out");
    let summary = flag_value(args, "trace-summary");
    if out.is_none() && summary.is_none() {
        return None;
    }
    Some(TraceFlags { out, summary })
}

/// Writes one requests/latency/breakdown block from a set of completed
/// request breakdowns (open object; caller owns begin/end).
fn write_trace_block(w: &mut ObsJsonWriter, complete: &[RequestBreakdown], incomplete: u64) {
    let mut latencies: Vec<u64> = complete.iter().map(|b| b.end_to_end_us).collect();
    latencies.sort_unstable();
    let sum = |f: fn(&RequestBreakdown) -> u64| complete.iter().map(f).sum::<u64>();
    let (handler, queue) = (sum(|b| b.handler_us), sum(|b| b.queue_us));
    let (link, retransmit) = (sum(|b| b.link_us), sum(|b| b.retransmit_us));
    w.key("requests").uint(complete.len() as u64);
    w.key("incomplete").uint(incomplete);
    w.key("latency_us").begin_object();
    w.key("p50").uint(percentile_us(&latencies, 50));
    w.key("p95").uint(percentile_us(&latencies, 95));
    w.key("p99").uint(percentile_us(&latencies, 99));
    w.key("max").uint(latencies.last().copied().unwrap_or(0));
    w.end_object();
    // The four classes sum to end_to_end by construction (pinned by the
    // golden tests), so readers can derive shares without re-walking.
    w.key("breakdown_us").begin_object();
    w.key("handler").uint(handler);
    w.key("queue").uint(queue);
    w.key("link").uint(link);
    w.key("retransmit").uint(retransmit);
    w.key("end_to_end").uint(latencies.iter().sum::<u64>());
    w.end_object();
    w.key("retransmits").uint(sum(|b| b.retransmits));
    w.key("spans").uint(sum(|b| b.spans));
    w.key("handler_events").uint(sum(|b| b.handler_events));
}

impl SweepReport {
    /// The causal-trace Chrome form: like [`SweepReport::obs_chrome`]
    /// but with every cell's timeline in canonical order, so the bytes
    /// are identical across `--threads` *and* (on deterministic links)
    /// `--shards` values. This is the `--trace-out` sink.
    pub fn trace_chrome(&self) -> String {
        let scopes: Vec<String> = self.results.iter().map(cell_scope).collect();
        svckit_obs::chrome_trace_canonical(
            self.results
                .iter()
                .zip(&scopes)
                .enumerate()
                .map(|(i, (r, s))| (i as u64, s.as_str(), &r.obs)),
        )
    }

    /// The critical-path report (`TRACE_summary.json`): per cell and per
    /// `target/variation/campaign` group, the completed-request count,
    /// nearest-rank latency percentiles, and the handler/queue/link/
    /// retransmit attribution totals from walking every request's span
    /// tree. Deterministic for the same reasons as
    /// [`SweepReport::trace_chrome`].
    pub fn trace_summary_json(&self) -> String {
        type Group = (String, String, String, Vec<RequestBreakdown>, u64);
        let mut groups: Vec<Group> = Vec::new();
        let mut w = ObsJsonWriter::pretty();
        w.begin_object();
        w.key("sweep").string(&self.name);
        w.key("obs_sites_enabled")
            .boolean(svckit_obs::sites_enabled());
        w.key("cells").begin_array();
        for r in &self.results {
            let mut complete = Vec::new();
            let mut incomplete = 0u64;
            let mut nesting_errors = 0u64;
            for tree in trace_trees(r.obs.events()) {
                if tree.check_nesting().is_err() {
                    nesting_errors += 1;
                }
                match tree.breakdown() {
                    Some(b) => complete.push(b),
                    None => incomplete += 1,
                }
            }
            w.begin_object();
            w.key("scope").string(&cell_scope(r));
            write_trace_block(&mut w, &complete, incomplete);
            w.key("nesting_errors").uint(nesting_errors);
            w.end_object();
            let key = (&r.target_label, &r.variation_label, &r.campaign_label);
            match groups.iter_mut().find(|g| (&g.0, &g.1, &g.2) == key) {
                Some(g) => {
                    g.3.extend(complete);
                    g.4 += incomplete;
                }
                None => groups.push((
                    r.target_label.clone(),
                    r.variation_label.clone(),
                    r.campaign_label.clone(),
                    complete,
                    incomplete,
                )),
            }
        }
        w.end_array();
        w.key("groups").begin_array();
        for (target, variation, campaign, complete, incomplete) in &groups {
            w.begin_object();
            w.key("target").string(target);
            w.key("variation").string(variation);
            w.key("campaign").string(campaign);
            write_trace_block(&mut w, complete, *incomplete);
            w.end_object();
        }
        w.end_array();
        w.end_object();
        w.finish()
    }

    /// Writes the requested trace sinks ([`trace_flags`]).
    ///
    /// # Panics
    ///
    /// Panics when a file cannot be written.
    pub fn write_trace(&self, flags: &TraceFlags) {
        if let Some(path) = &flags.out {
            std::fs::write(path, self.trace_chrome())
                .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
            println!("wrote {path} (chrome trace, canonical order)");
        }
        if let Some(path) = &flags.summary {
            std::fs::write(path, self.trace_summary_json())
                .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
            println!("wrote {path} (critical-path summary)");
        }
    }
}

/// Parses `--obs-out <path>` / `--obs-format {jsonl,chrome}`; `None`
/// when no obs output was requested. The format defaults to `jsonl`.
///
/// # Panics
///
/// Panics (with a usage message) on an unknown format.
pub fn obs_flags(args: &[String]) -> Option<(String, ObsFormat)> {
    let path = flag_value(args, "obs-out")?;
    let format = match flag_value(args, "obs-format").as_deref() {
        None | Some("jsonl") => ObsFormat::Jsonl,
        Some("chrome") => ObsFormat::Chrome,
        Some(other) => panic!("--obs-format expects `jsonl` or `chrome`, got {other:?}"),
    };
    Some((path, format))
}

/// Stderr verbosity, shared by every experiment binary: `--quiet`
/// silences the informational summaries, `-v`/`--verbose` adds detail.
/// Canonical JSON always goes to files/stdout untouched — verbosity only
/// governs stderr.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Verbosity {
    /// `--quiet`: nothing on stderr.
    Quiet,
    /// Default: one-line summaries on stderr.
    Normal,
    /// `-v` / `--verbose`: per-cell / per-sink detail on stderr.
    Verbose,
}

impl Verbosity {
    /// Logs `msg` to stderr unless quiet.
    pub fn info(self, msg: &str) {
        if self >= Verbosity::Normal {
            eprintln!("{msg}");
        }
    }

    /// Logs `msg` to stderr only when verbose.
    pub fn debug(self, msg: &str) {
        if self >= Verbosity::Verbose {
            eprintln!("{msg}");
        }
    }

    /// Logs a one-line summary of a recorder's contents (sink summary)
    /// unless quiet.
    pub fn sink_summary(self, label: &str, recorder: &Recorder) {
        if self < Verbosity::Normal {
            return;
        }
        eprintln!(
            "obs[{label}]: {} counter(s), {} event(s) ({} dropped), {} link(s), sites {}",
            recorder.counters().len(),
            recorder.events().len(),
            recorder.events_dropped(),
            recorder.links().len(),
            if svckit_obs::sites_enabled() {
                "enabled"
            } else {
                "disabled"
            }
        );
        if self >= Verbosity::Verbose {
            for (name, value) in recorder.counters() {
                eprintln!("obs[{label}]:   {name} = {value}");
            }
        }
    }
}

/// Parses the shared `--quiet` / `-v` / `--verbose` flags.
pub fn verbosity(args: &[String]) -> Verbosity {
    if args.iter().any(|a| a == "--quiet") {
        Verbosity::Quiet
    } else if args.iter().any(|a| a == "-v" || a == "--verbose") {
        Verbosity::Verbose
    } else {
        Verbosity::Normal
    }
}

/// Returns the value following `--<name>` in `args`, if present.
///
/// Shared by the experiment binaries so `--out`, `--threads` and
/// `--seeds` parse uniformly.
pub fn flag_value(args: &[String], name: &str) -> Option<String> {
    let flag = format!("--{name}");
    args.iter()
        .position(|a| *a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// [`flag_value`] parsed as a number, with a default.
///
/// # Panics
///
/// Panics (with a usage message) when the value is present but not a
/// number.
pub fn flag_usize(args: &[String], name: &str, default: usize) -> usize {
    match flag_value(args, name) {
        None => default,
        Some(v) => v
            .parse()
            .unwrap_or_else(|_| panic!("--{name} expects a number, got {v:?}")),
    }
}

/// Parses the shared `--queue-backend` flag (`wheel` | `heap`); `None`
/// when absent, leaving each spec/variation to its own default.
///
/// # Panics
///
/// Panics (with a usage message) on an unknown backend name.
pub fn queue_backend_flag(args: &[String]) -> Option<svckit::netsim::QueueBackend> {
    let value = flag_value(args, "queue-backend")?;
    Some(value.parse().unwrap_or_else(|e| panic!("{e}")))
}

/// Parses the shared `--shards N` flag; `None` when absent, leaving each
/// spec/variation to its own default (the sequential engine).
///
/// # Panics
///
/// Panics (with a usage message) when the value is not a positive number.
pub fn shards_flag(args: &[String]) -> Option<u32> {
    let value = flag_value(args, "shards")?;
    let shards: u32 = value
        .parse()
        .unwrap_or_else(|_| panic!("--shards expects a number, got {value:?}"));
    assert!(shards >= 1, "--shards expects a count >= 1");
    Some(shards)
}

/// Parses the shared `--engine` flag (`dfa` | `interp`); `None` when
/// absent, leaving each spec/variation to its own default (the compiled
/// DFA tables).
///
/// # Panics
///
/// Panics (with a usage message) on an unknown engine name.
pub fn engine_flag(args: &[String]) -> Option<svckit::floorctl::Engine> {
    let value = flag_value(args, "engine")?;
    Some(value.parse().unwrap_or_else(|e| panic!("{e}")))
}

/// Parses the shared `--symmetry` flag (`on` | `off`); `None` when absent,
/// leaving each consumer to its own default.
///
/// # Panics
///
/// Panics (with a usage message) on an unknown setting.
pub fn symmetry_flag(args: &[String]) -> Option<svckit::lts::Symmetry> {
    let value = flag_value(args, "symmetry")?;
    Some(value.parse().unwrap_or_else(|e| panic!("{e}")))
}

/// Parses the shared `--backend` flag (`explicit` | `symbolic`); `None`
/// when absent, leaving each consumer to its own default (the explicit
/// breadth-first search).
///
/// # Panics
///
/// Panics (with a usage message) on an unknown backend name.
pub fn backend_flag(args: &[String]) -> Option<svckit::lts::Backend> {
    let value = flag_value(args, "backend")?;
    Some(value.parse().unwrap_or_else(|e| panic!("{e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::run_sweep;
    use crate::spec::SweepSpec;
    use svckit::floorctl::{RunParams, Solution};

    #[test]
    fn fmt_f_has_three_decimals() {
        assert_eq!(fmt_f(1.23456), "1.235");
        assert_eq!(fmt_f(0.0), "0.000");
    }

    #[test]
    fn flag_parsing() {
        let args: Vec<String> = ["--out", "x.json", "--threads", "4"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(flag_value(&args, "out").as_deref(), Some("x.json"));
        assert_eq!(flag_usize(&args, "threads", 1), 4);
        assert_eq!(flag_usize(&args, "seeds", 8), 8);
        assert_eq!(flag_value(&args, "missing"), None);
    }

    #[test]
    fn trace_flag_parsing() {
        let args: Vec<String> = ["--trace-out", "t.json"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let flags = trace_flags(&args).unwrap();
        assert_eq!(flags.out.as_deref(), Some("t.json"));
        assert_eq!(flags.summary, None);
        let both: Vec<String> = ["--trace-out", "t.json", "--trace-summary", "s.json"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let flags = trace_flags(&both).unwrap();
        assert_eq!(flags.summary.as_deref(), Some("s.json"));
        assert!(trace_flags(&["--out".to_owned()]).is_none());
    }

    #[test]
    fn trace_summary_has_cells_groups_and_exact_attribution() {
        let spec = SweepSpec::new("trace-fmt")
            .solutions([Solution::MwCallback])
            .variation("tiny", RunParams::default().subscribers(2).rounds(1));
        let report = run_sweep(&spec, 1);
        let json = report.trace_summary_json();
        assert!(json.starts_with("{\n  \"sweep\": \"trace-fmt\""));
        assert!(json.contains("\"cells\": ["));
        assert!(json.contains("\"groups\": ["));
        assert!(json.contains("\"breakdown_us\": {"));
        assert!(json.contains("\"nesting_errors\": 0"));
        // The summary is self-checking through the golden tests; here we
        // re-derive the invariant from the raw trees.
        for r in &report.results {
            for tree in trace_trees(r.obs.events()) {
                tree.check_nesting().unwrap();
                if let Some(b) = tree.breakdown() {
                    assert_eq!(
                        b.handler_us + b.queue_us + b.link_us + b.retransmit_us,
                        b.end_to_end_us
                    );
                }
            }
        }
    }

    #[test]
    fn json_contains_cells_and_groups() {
        let spec = SweepSpec::new("fmt")
            .solutions([Solution::MwCallback])
            .variation("tiny", RunParams::default().subscribers(2).rounds(1));
        let report = run_sweep(&spec, 1);
        let json = report.to_json();
        assert!(json.starts_with("{\n  \"sweep\": \"fmt\""));
        assert!(json.contains("\"cells\": ["));
        assert!(json.contains("\"groups\": ["));
        assert!(json.contains("\"target\": \"mw-callback\""));
        assert!(json.contains("\"virtual_us\": "));
        assert!(!json.contains("wall"), "wall time is sidecar-only");
        assert!(json.ends_with("}\n"));
    }

    #[test]
    fn timing_sidecar_has_wall_and_virtual_per_cell() {
        let spec = SweepSpec::new("timing")
            .solutions([Solution::MwCallback])
            .variation("tiny", RunParams::default().subscribers(2).rounds(1))
            .seeds([7, 8]);
        let report = run_sweep(&spec, 1);
        let timing = report.timing_json();
        assert!(timing.starts_with("{\n  \"sweep\": \"timing\""));
        assert!(timing.contains("\"threads\": 1"));
        assert_eq!(
            timing.matches("\"wall_ms\": ").count(),
            3,
            "total + 2 cells"
        );
        assert_eq!(timing.matches("\"virtual_us\": ").count(), 2);
        for r in &report.results {
            assert!(r.wall > std::time::Duration::ZERO);
        }
    }
}
