//! Declarative sweep specifications.
//!
//! A [`SweepSpec`] names a grid of experiment *cells*: targets (solutions
//! or MDA platforms) × workload variations × optional fault campaigns ×
//! seeds. The grid is expanded by [`SweepSpec::cells`] in a fixed,
//! documented order, and the executor merges results back in that order —
//! which is what makes parallel output byte-identical to serial.

use std::fmt;

use svckit::floorctl::{Backend, Engine, FaultEvent, RunParams, Solution, Symmetry};
use svckit::netsim::QueueBackend;
use svckit::protocol::ReliabilityConfig;

/// What one cell runs: a floor-control solution directly, or an MDA
/// trajectory target (PIM → PSM on the named catalog platform → deploy).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CellTarget {
    /// One of the seven executable solutions.
    Solution(Solution),
    /// A concrete platform from `svckit::mda::catalog::all_platforms()`,
    /// by name (e.g. `"corba-like"`); the cell transforms the floor-control
    /// PIM onto it and runs the resulting PSM.
    Platform(String),
}

impl fmt::Display for CellTarget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CellTarget::Solution(s) => write!(f, "{s}"),
            CellTarget::Platform(p) => write!(f, "psm:{p}"),
        }
    }
}

/// One workload/environment variation: a label (used in tables and group
/// keys), the run parameters, and an optional reliability sub-layer.
#[derive(Debug, Clone)]
pub struct Variation {
    /// Label used in group keys, tables and JSON.
    pub label: String,
    /// Workload and link parameters for every cell of this variation.
    pub params: RunParams,
    /// Optional stop-and-wait reliability sub-layer (honoured by the
    /// protocol callback solution; ignored elsewhere).
    pub reliability: Option<ReliabilityConfig>,
}

/// A named partition/heal schedule applied to every cell it is crossed
/// with.
#[derive(Debug, Clone)]
pub struct FaultCampaign {
    /// Label used in group keys, tables and JSON.
    pub label: String,
    /// The schedule, applied in `at` order during the run.
    pub events: Vec<FaultEvent>,
}

/// A declarative description of a full experiment sweep.
#[derive(Debug, Clone)]
pub struct SweepSpec {
    /// Sweep name; becomes the `"sweep"` field of `SWEEP_<name>.json`.
    pub name: String,
    /// The targets to run (inner loop of the grid, after seeds).
    pub targets: Vec<CellTarget>,
    /// Workload variations (outermost loop of the grid).
    pub variations: Vec<Variation>,
    /// Fault campaigns; when empty, every cell runs fault-free with the
    /// campaign label `"none"`.
    pub campaigns: Vec<FaultCampaign>,
    /// Seeds; when empty, each variation runs once with the seed already
    /// set in its `params`.
    pub seeds: Vec<u64>,
    /// Optional group filter: when set, [`SweepSpec::cells`] keeps only
    /// cells whose group label (`target/variation/campaign`) contains this
    /// substring. Lets `--filter` re-run a single group of a large sweep.
    pub filter: Option<String>,
    /// Optional event-queue backend override applied to every cell
    /// (`--queue-backend`). `None` keeps each variation's own setting.
    /// Both backends produce byte-identical sweep JSON — overriding is
    /// only useful for differential testing in CI.
    pub queue: Option<QueueBackend>,
    /// Optional simulator shard count override applied to every cell
    /// (`--shards`). `None` keeps each variation's own setting.
    pub shards: Option<u32>,
    /// Optional admission-engine override applied to every cell
    /// (`--engine`). `None` keeps each variation's own setting. Both
    /// engines produce byte-identical sweep JSON — overriding is only
    /// useful for differential testing in CI.
    pub engine: Option<Engine>,
    /// Optional symmetry-quotient override applied to every cell
    /// (`--symmetry`). `None` keeps each variation's own setting. The
    /// simulation never explores state spaces, so sweep JSON is
    /// byte-identical across settings — the knob reaches the cells' run
    /// parameters for pre-run verification tooling (`floorctl --verify`).
    pub symmetry: Option<Symmetry>,
    /// Optional reachability-backend override applied to every cell
    /// (`--backend`). `None` keeps each variation's own setting. Like
    /// [`SweepSpec::symmetry`], the simulation never explores state
    /// spaces, so sweep JSON is byte-identical across settings — the knob
    /// reaches the cells' run parameters for pre-run verification tooling
    /// (`floorctl --verify`).
    pub backend: Option<Backend>,
}

/// One expanded grid point, by index into the owning [`SweepSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cell {
    /// Position in the expanded grid (also the merge position).
    pub index: usize,
    /// Index into [`SweepSpec::targets`].
    pub target: usize,
    /// Index into [`SweepSpec::variations`].
    pub variation: usize,
    /// Index into [`SweepSpec::campaigns`], or `None` when the spec has no
    /// campaigns.
    pub campaign: Option<usize>,
    /// The seed this cell runs with.
    pub seed: u64,
}

impl SweepSpec {
    /// An empty spec with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        SweepSpec {
            name: name.into(),
            targets: Vec::new(),
            variations: Vec::new(),
            campaigns: Vec::new(),
            seeds: Vec::new(),
            filter: None,
            queue: None,
            shards: None,
            engine: None,
            symmetry: None,
            backend: None,
        }
    }

    /// Adds solution targets (builder-style).
    #[must_use]
    pub fn solutions(mut self, solutions: impl IntoIterator<Item = Solution>) -> Self {
        self.targets
            .extend(solutions.into_iter().map(CellTarget::Solution));
        self
    }

    /// Adds an MDA platform target by catalog name (builder-style).
    #[must_use]
    pub fn platform(mut self, name: impl Into<String>) -> Self {
        self.targets.push(CellTarget::Platform(name.into()));
        self
    }

    /// Adds a workload variation (builder-style).
    #[must_use]
    pub fn variation(mut self, label: impl Into<String>, params: RunParams) -> Self {
        self.variations.push(Variation {
            label: label.into(),
            params,
            reliability: None,
        });
        self
    }

    /// Adds a workload variation with a reliability sub-layer
    /// (builder-style).
    #[must_use]
    pub fn variation_with_reliability(
        mut self,
        label: impl Into<String>,
        params: RunParams,
        reliability: ReliabilityConfig,
    ) -> Self {
        self.variations.push(Variation {
            label: label.into(),
            params,
            reliability: Some(reliability),
        });
        self
    }

    /// Adds a fault campaign (builder-style).
    #[must_use]
    pub fn campaign(
        mut self,
        label: impl Into<String>,
        events: impl IntoIterator<Item = FaultEvent>,
    ) -> Self {
        self.campaigns.push(FaultCampaign {
            label: label.into(),
            events: events.into_iter().collect(),
        });
        self
    }

    /// Adds seeds (builder-style); every (variation, campaign, target)
    /// group runs once per seed.
    #[must_use]
    pub fn seeds(mut self, seeds: impl IntoIterator<Item = u64>) -> Self {
        self.seeds.extend(seeds);
        self
    }

    /// Restricts the expanded grid to cells whose group label
    /// ([`SweepSpec::group_label`]) contains `needle` (builder-style).
    ///
    /// Filtering happens during [`SweepSpec::cells`] expansion, before any
    /// cell runs, so re-running a single group of an expensive sweep costs
    /// only that group. The surviving cells keep the canonical order and
    /// are re-indexed, so parallel execution stays byte-identical to
    /// serial.
    #[must_use]
    pub fn filter(mut self, needle: impl Into<String>) -> Self {
        self.filter = Some(needle.into());
        self
    }

    /// Forces every cell onto the given event-queue backend
    /// (builder-style). See [`SweepSpec::queue`].
    #[must_use]
    pub fn queue_backend(mut self, backend: QueueBackend) -> Self {
        self.queue = Some(backend);
        self
    }

    /// Forces every cell onto the given simulator shard count
    /// (builder-style). See [`SweepSpec::shards`].
    #[must_use]
    pub fn shards(mut self, shards: u32) -> Self {
        self.shards = Some(shards.max(1));
        self
    }

    /// Forces every cell onto the given admission engine (builder-style).
    /// See [`SweepSpec::engine`].
    #[must_use]
    pub fn engine(mut self, engine: Engine) -> Self {
        self.engine = Some(engine);
        self
    }

    /// Forces every cell onto the given symmetry setting (builder-style).
    /// See [`SweepSpec::symmetry`].
    #[must_use]
    pub fn symmetry(mut self, symmetry: Symmetry) -> Self {
        self.symmetry = Some(symmetry);
        self
    }

    /// Forces every cell onto the given reachability backend
    /// (builder-style). See [`SweepSpec::backend`].
    #[must_use]
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = Some(backend);
        self
    }

    /// The label of a campaign index (the implicit no-fault campaign is
    /// `"none"`).
    pub fn campaign_label(&self, campaign: Option<usize>) -> &str {
        match campaign {
            Some(i) => &self.campaigns[i].label,
            None => "none",
        }
    }

    /// The `target/variation/campaign` group label of a cell — the key
    /// [`SweepSpec::filter`] matches against and the identity under which
    /// the aggregator groups results.
    pub fn group_label(&self, cell: &Cell) -> String {
        format!(
            "{}/{}/{}",
            self.targets[cell.target],
            self.variations[cell.variation].label,
            self.campaign_label(cell.campaign)
        )
    }

    /// Expands the grid in the canonical cell order:
    /// variations → campaigns → targets → seeds. Seeds are innermost so a
    /// (variation, campaign, target) group occupies a contiguous run of
    /// cells; variations are outermost so text tables read like the
    /// experiment binaries' existing sections.
    pub fn cells(&self) -> Vec<Cell> {
        let campaign_indices: Vec<Option<usize>> = if self.campaigns.is_empty() {
            vec![None]
        } else {
            (0..self.campaigns.len()).map(Some).collect()
        };
        let mut cells = Vec::new();
        for (variation, v) in self.variations.iter().enumerate() {
            let seeds: Vec<u64> = if self.seeds.is_empty() {
                vec![v.params.seed_value()]
            } else {
                self.seeds.clone()
            };
            for &campaign in &campaign_indices {
                for target in 0..self.targets.len() {
                    for &seed in &seeds {
                        cells.push(Cell {
                            index: cells.len(),
                            target,
                            variation,
                            campaign,
                            seed,
                        });
                    }
                }
            }
        }
        if let Some(needle) = &self.filter {
            cells.retain(|c| self.group_label(c).contains(needle.as_str()));
            for (i, cell) in cells.iter_mut().enumerate() {
                cell.index = i;
            }
        }
        cells
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use svckit::model::Duration;

    #[test]
    fn grid_order_is_variation_campaign_target_seed() {
        let spec = SweepSpec::new("t")
            .solutions([Solution::MwCallback, Solution::ProtoCallback])
            .variation("a", RunParams::default())
            .variation("b", RunParams::default())
            .seeds([1, 2, 3]);
        let cells = spec.cells();
        assert_eq!(cells.len(), 2 * 2 * 3);
        assert_eq!(cells[0].variation, 0);
        assert_eq!(cells[0].target, 0);
        assert_eq!(cells[0].seed, 1);
        assert_eq!(cells[2].seed, 3);
        assert_eq!(cells[3].target, 1);
        assert_eq!(cells[6].variation, 1);
        assert!(cells.iter().enumerate().all(|(i, c)| c.index == i));
        assert!(cells.iter().all(|c| c.campaign.is_none()));
    }

    #[test]
    fn empty_seeds_fall_back_to_variation_seed() {
        let spec = SweepSpec::new("t")
            .solutions([Solution::MwCallback])
            .variation("a", RunParams::default().seed(99));
        let cells = spec.cells();
        assert_eq!(cells.len(), 1);
        assert_eq!(cells[0].seed, 99);
    }

    #[test]
    fn campaigns_multiply_the_grid() {
        let spec = SweepSpec::new("t")
            .solutions([Solution::MwCallback])
            .variation("a", RunParams::default())
            .campaign("none-early", [])
            .campaign(
                "cut",
                [FaultEvent::partition(
                    Duration::from_millis(1),
                    svckit::model::PartId::new(1),
                    svckit::model::PartId::new(1000),
                )],
            )
            .seeds([5]);
        let cells = spec.cells();
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[0].campaign, Some(0));
        assert_eq!(cells[1].campaign, Some(1));
        assert_eq!(spec.campaign_label(Some(1)), "cut");
        assert_eq!(spec.campaign_label(None), "none");
    }

    #[test]
    fn filter_keeps_one_group_and_reindexes() {
        let spec = SweepSpec::new("t")
            .solutions([Solution::MwCallback, Solution::ProtoCallback])
            .variation("a", RunParams::default())
            .variation("b", RunParams::default())
            .seeds([1, 2])
            .filter("proto-callback/b");
        let cells = spec.cells();
        assert_eq!(cells.len(), 2, "one target x one variation x two seeds");
        for (i, cell) in cells.iter().enumerate() {
            assert_eq!(cell.index, i, "filtered cells are re-indexed");
            assert_eq!(spec.group_label(cell), "proto-callback/b/none");
        }
        assert_eq!(cells[0].seed, 1);
        assert_eq!(cells[1].seed, 2);

        let none = SweepSpec::new("t")
            .solutions([Solution::MwCallback])
            .variation("a", RunParams::default())
            .filter("no-such-group");
        assert!(none.cells().is_empty());
    }

    #[test]
    fn target_display_labels() {
        assert_eq!(
            CellTarget::Solution(Solution::MwToken).to_string(),
            "mw-token"
        );
        assert_eq!(
            CellTarget::Platform("corba-like".into()).to_string(),
            "psm:corba-like"
        );
    }
}
