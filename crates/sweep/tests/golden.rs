//! Golden tests for the sweep subsystem's central promise: parallel
//! execution changes wall-clock time only, never a single output byte —
//! and fault campaigns behave deterministically and idempotently.

use svckit::floorctl::{FaultEvent, RunParams, Solution};
use svckit::model::Duration;
use svckit::protocol::ReliabilityConfig;
use svckit_sweep::{run_sweep, SweepSpec};

fn proto_sub(k: u64) -> svckit::model::PartId {
    svckit::floorctl::proto::subscriber_part(k)
}

fn proto_ctl() -> svckit::model::PartId {
    svckit::floorctl::proto::controller_part()
}

#[test]
fn four_thread_sweep_json_is_byte_identical_to_serial() {
    let spec = SweepSpec::new("golden")
        .solutions([
            Solution::MwCallback,
            Solution::MwToken,
            Solution::ProtoCallback,
            Solution::ProtoToken,
        ])
        .platform("corba-like")
        .variation(
            "base",
            RunParams::default().subscribers(3).resources(2).rounds(2),
        )
        .variation(
            "contended",
            RunParams::default().subscribers(4).resources(1).rounds(2),
        )
        .seeds([11, 12, 13]);

    let serial = run_sweep(&spec, 1).to_json();
    let parallel = run_sweep(&spec, 4).to_json();
    assert_eq!(serial.as_bytes(), parallel.as_bytes());
}

#[test]
fn fault_campaign_cells_stay_conformant_through_partition_and_heal() {
    let spec = SweepSpec::new("faults")
        .solutions([Solution::ProtoCallback])
        .variation_with_reliability(
            "reliable",
            RunParams::default()
                .subscribers(3)
                .resources(1)
                .rounds(2)
                .time_cap(Duration::from_secs(120)),
            ReliabilityConfig::new(Duration::from_millis(8)),
        )
        .campaign("none", [])
        .campaign(
            "cut-heal",
            [
                FaultEvent::partition(Duration::from_millis(3), proto_sub(1), proto_ctl()),
                FaultEvent::heal(Duration::from_millis(9), proto_sub(1), proto_ctl()),
            ],
        )
        .seeds([21, 22]);

    let report = run_sweep(&spec, 2);
    assert_eq!(report.results.len(), 4);
    for r in &report.results {
        assert!(
            r.outcome.conformant,
            "{}/{} seed {} violated the service",
            r.target_label, r.campaign_label, r.cell.seed
        );
        assert!(
            r.outcome.completed,
            "{}/{} seed {} did not recover",
            r.target_label, r.campaign_label, r.cell.seed
        );
    }
    let fault_free = &report.groups[0];
    let faulted = &report.groups[1];
    assert_eq!(fault_free.campaign, "none");
    assert_eq!(faulted.campaign, "cut-heal");
    // The outage costs time (retransmissions through a dead link), never
    // correctness.
    assert!(faulted.latency_p99 >= fault_free.latency_p99);
}

#[test]
fn duplicate_partition_events_are_idempotent() {
    let base = RunParams::default()
        .subscribers(3)
        .resources(1)
        .rounds(2)
        .time_cap(Duration::from_secs(120));
    let cut = FaultEvent::partition(Duration::from_millis(3), proto_sub(2), proto_ctl());
    let heal = FaultEvent::heal(Duration::from_millis(9), proto_sub(2), proto_ctl());

    let once = SweepSpec::new("idem")
        .solutions([Solution::ProtoCallback])
        .variation_with_reliability(
            "reliable",
            base.clone(),
            ReliabilityConfig::new(Duration::from_millis(8)),
        )
        .campaign("cut-heal", [cut, heal])
        .seeds([31]);
    // The same partition applied twice must behave exactly like applying
    // it once: heal restores the original link, not a doubly-degraded one.
    let twice = SweepSpec::new("idem")
        .solutions([Solution::ProtoCallback])
        .variation_with_reliability(
            "reliable",
            base,
            ReliabilityConfig::new(Duration::from_millis(8)),
        )
        .campaign("cut-heal", [cut, cut, heal])
        .seeds([31]);

    let a = run_sweep(&once, 1).to_json();
    let b = run_sweep(&twice, 1).to_json();
    assert_eq!(a, b);
}

/// A small grid for the obs golden tests: two solutions, faults, two seeds.
fn obs_spec() -> SweepSpec {
    SweepSpec::new("obs-golden")
        .solutions([Solution::MwCallback, Solution::ProtoCallback])
        .variation(
            "base",
            RunParams::default().subscribers(3).resources(2).rounds(2),
        )
        .campaign("none", [])
        .campaign(
            "cut-heal",
            [
                FaultEvent::partition(Duration::from_millis(3), proto_sub(1), proto_ctl()),
                FaultEvent::heal(Duration::from_millis(9), proto_sub(1), proto_ctl()),
            ],
        )
        .seeds([41, 42])
}

#[test]
fn obs_output_is_byte_identical_across_thread_counts() {
    // Each cell records into its worker's thread-local recorder and the
    // merge is in spec order, so every sink format must be unaffected by
    // the worker count — the property CI also checks end-to-end via `cmp`.
    let serial = run_sweep(&obs_spec(), 1);
    let parallel = run_sweep(&obs_spec(), 4);
    assert_eq!(
        serial.obs_jsonl().as_bytes(),
        parallel.obs_jsonl().as_bytes()
    );
    assert_eq!(
        serial.obs_chrome().as_bytes(),
        parallel.obs_chrome().as_bytes()
    );
    assert_eq!(
        serial.obs_blocks_json().as_bytes(),
        parallel.obs_blocks_json().as_bytes()
    );
}

#[test]
fn obs_virtual_timestamps_repeat_across_same_seed_runs() {
    // Timestamps are simulator virtual time, never wall clock: repeating
    // the same seeds must reproduce every span and counter byte-for-byte.
    let a = run_sweep(&obs_spec(), 2);
    let b = run_sweep(&obs_spec(), 2);
    assert_eq!(a.obs_jsonl(), b.obs_jsonl());
    assert_eq!(a.obs_chrome(), b.obs_chrome());

    // With instrumentation compiled in, the capture is real, not vacuously
    // equal-because-empty.
    if svckit::obs::sites_enabled() {
        let total = a.obs_total();
        assert!(total.counter("net.events") > 0);
        assert!(!total.events().is_empty());
        assert!(!total.links().is_empty());
    } else {
        assert!(a.obs_total().is_empty());
    }
}
