//! Golden tests for the sweep subsystem's central promise: parallel
//! execution changes wall-clock time only, never a single output byte —
//! and fault campaigns behave deterministically and idempotently.

use svckit::floorctl::{FaultEvent, RunParams, Solution};
use svckit::model::Duration;
use svckit::protocol::ReliabilityConfig;
use svckit_sweep::{run_sweep, SweepSpec};

fn proto_sub(k: u64) -> svckit::model::PartId {
    svckit::floorctl::proto::subscriber_part(k)
}

fn proto_ctl() -> svckit::model::PartId {
    svckit::floorctl::proto::controller_part()
}

#[test]
fn four_thread_sweep_json_is_byte_identical_to_serial() {
    let spec = SweepSpec::new("golden")
        .solutions([
            Solution::MwCallback,
            Solution::MwToken,
            Solution::ProtoCallback,
            Solution::ProtoToken,
        ])
        .platform("corba-like")
        .variation(
            "base",
            RunParams::default().subscribers(3).resources(2).rounds(2),
        )
        .variation(
            "contended",
            RunParams::default().subscribers(4).resources(1).rounds(2),
        )
        .seeds([11, 12, 13]);

    let serial = run_sweep(&spec, 1).to_json();
    let parallel = run_sweep(&spec, 4).to_json();
    assert_eq!(serial.as_bytes(), parallel.as_bytes());
}

#[test]
fn fault_campaign_cells_stay_conformant_through_partition_and_heal() {
    let spec = SweepSpec::new("faults")
        .solutions([Solution::ProtoCallback])
        .variation_with_reliability(
            "reliable",
            RunParams::default()
                .subscribers(3)
                .resources(1)
                .rounds(2)
                .time_cap(Duration::from_secs(120)),
            ReliabilityConfig::new(Duration::from_millis(8)),
        )
        .campaign("none", [])
        .campaign(
            "cut-heal",
            [
                FaultEvent::partition(Duration::from_millis(3), proto_sub(1), proto_ctl()),
                FaultEvent::heal(Duration::from_millis(9), proto_sub(1), proto_ctl()),
            ],
        )
        .seeds([21, 22]);

    let report = run_sweep(&spec, 2);
    assert_eq!(report.results.len(), 4);
    for r in &report.results {
        assert!(
            r.outcome.conformant,
            "{}/{} seed {} violated the service",
            r.target_label, r.campaign_label, r.cell.seed
        );
        assert!(
            r.outcome.completed,
            "{}/{} seed {} did not recover",
            r.target_label, r.campaign_label, r.cell.seed
        );
    }
    let fault_free = &report.groups[0];
    let faulted = &report.groups[1];
    assert_eq!(fault_free.campaign, "none");
    assert_eq!(faulted.campaign, "cut-heal");
    // The outage costs time (retransmissions through a dead link), never
    // correctness.
    assert!(faulted.latency_p99 >= fault_free.latency_p99);
}

#[test]
fn duplicate_partition_events_are_idempotent() {
    let base = RunParams::default()
        .subscribers(3)
        .resources(1)
        .rounds(2)
        .time_cap(Duration::from_secs(120));
    let cut = FaultEvent::partition(Duration::from_millis(3), proto_sub(2), proto_ctl());
    let heal = FaultEvent::heal(Duration::from_millis(9), proto_sub(2), proto_ctl());

    let once = SweepSpec::new("idem")
        .solutions([Solution::ProtoCallback])
        .variation_with_reliability(
            "reliable",
            base.clone(),
            ReliabilityConfig::new(Duration::from_millis(8)),
        )
        .campaign("cut-heal", [cut, heal])
        .seeds([31]);
    // The same partition applied twice must behave exactly like applying
    // it once: heal restores the original link, not a doubly-degraded one.
    let twice = SweepSpec::new("idem")
        .solutions([Solution::ProtoCallback])
        .variation_with_reliability(
            "reliable",
            base,
            ReliabilityConfig::new(Duration::from_millis(8)),
        )
        .campaign("cut-heal", [cut, cut, heal])
        .seeds([31]);

    let a = run_sweep(&once, 1).to_json();
    let b = run_sweep(&twice, 1).to_json();
    assert_eq!(a, b);
}

/// A small grid for the obs golden tests: two solutions, faults, two seeds.
fn obs_spec() -> SweepSpec {
    SweepSpec::new("obs-golden")
        .solutions([Solution::MwCallback, Solution::ProtoCallback])
        .variation(
            "base",
            RunParams::default().subscribers(3).resources(2).rounds(2),
        )
        .campaign("none", [])
        .campaign(
            "cut-heal",
            [
                FaultEvent::partition(Duration::from_millis(3), proto_sub(1), proto_ctl()),
                FaultEvent::heal(Duration::from_millis(9), proto_sub(1), proto_ctl()),
            ],
        )
        .seeds([41, 42])
}

#[test]
fn obs_output_is_byte_identical_across_thread_counts() {
    // Each cell records into its worker's thread-local recorder and the
    // merge is in spec order, so every sink format must be unaffected by
    // the worker count — the property CI also checks end-to-end via `cmp`.
    let serial = run_sweep(&obs_spec(), 1);
    let parallel = run_sweep(&obs_spec(), 4);
    assert_eq!(
        serial.obs_jsonl().as_bytes(),
        parallel.obs_jsonl().as_bytes()
    );
    assert_eq!(
        serial.obs_chrome().as_bytes(),
        parallel.obs_chrome().as_bytes()
    );
    assert_eq!(
        serial.obs_blocks_json().as_bytes(),
        parallel.obs_blocks_json().as_bytes()
    );
}

/// A grid for the causal-trace goldens. Deterministic links only: the
/// sequential engine draws jitter from one global RNG stream while the
/// sharded engine draws per-pair, so byte-identity across `--shards`
/// holds exactly on the jitter-free envelope (like the shard oracle).
fn trace_spec(shards: u32) -> SweepSpec {
    use svckit::netsim::LinkConfig;
    SweepSpec::new("trace-golden")
        .solutions([
            Solution::MwCallback,
            Solution::MwQueue,
            Solution::ProtoCallback,
        ])
        .variation(
            "det",
            RunParams::default()
                .subscribers(3)
                .resources(2)
                .rounds(2)
                .link(LinkConfig::perfect(Duration::from_micros(500))),
        )
        .seeds([51, 52])
        .shards(shards)
}

#[test]
fn trace_output_is_byte_identical_across_threads_and_shards() {
    // Same ids, same spans, same summary — whether cells run serially,
    // on four workers, or inside the sharded simulator. This is the
    // end-to-end form of the property CI `cmp`s on the fig4_trace spec.
    let base = run_sweep(&trace_spec(1), 1);
    let chrome = base.trace_chrome();
    let summary = base.trace_summary_json();
    let threads4 = run_sweep(&trace_spec(1), 4);
    assert_eq!(chrome.as_bytes(), threads4.trace_chrome().as_bytes());
    assert_eq!(summary.as_bytes(), threads4.trace_summary_json().as_bytes());
    let shards4 = run_sweep(&trace_spec(4), 2);
    assert_eq!(chrome.as_bytes(), shards4.trace_chrome().as_bytes());
    assert_eq!(summary.as_bytes(), shards4.trace_summary_json().as_bytes());
}

#[test]
fn trace_trees_nest_and_breakdowns_sum_exactly() {
    let report = run_sweep(&trace_spec(2), 2);
    let mut complete = 0u64;
    for r in &report.results {
        for tree in svckit::obs::trace_trees(r.obs.events()) {
            tree.check_nesting()
                .unwrap_or_else(|e| panic!("{}: {e}", r.target_label));
            if let Some(b) = tree.breakdown() {
                complete += 1;
                assert_eq!(
                    b.handler_us + b.queue_us + b.link_us + b.retransmit_us,
                    b.end_to_end_us,
                    "attribution must sum to end-to-end for trace {:#x} of {}",
                    b.trace_id,
                    r.target_label
                );
                assert!(b.link_us > 0, "every request crosses at least one link");
            }
        }
        if svckit::obs::sites_enabled() {
            // Every part issues `request`s that terminate in `granted`s;
            // only the unanswered `free` indications stay incomplete.
            assert!(
                r.outcome.floor.grants() > 0,
                "{} recorded no grants",
                r.target_label
            );
        }
    }
    if svckit::obs::sites_enabled() {
        assert!(complete > 0, "no completed request trees captured");
    } else {
        assert_eq!(complete, 0);
    }
}

#[test]
fn obs_virtual_timestamps_repeat_across_same_seed_runs() {
    // Timestamps are simulator virtual time, never wall clock: repeating
    // the same seeds must reproduce every span and counter byte-for-byte.
    let a = run_sweep(&obs_spec(), 2);
    let b = run_sweep(&obs_spec(), 2);
    assert_eq!(a.obs_jsonl(), b.obs_jsonl());
    assert_eq!(a.obs_chrome(), b.obs_chrome());

    // With instrumentation compiled in, the capture is real, not vacuously
    // equal-because-empty.
    if svckit::obs::sites_enabled() {
        let total = a.obs_total();
        assert!(total.counter("net.events") > 0);
        assert!(!total.events().is_empty());
        assert!(!total.links().is_empty());
    } else {
        assert!(a.obs_total().is_empty());
    }
}
