//! Property tests for the causal-trace invariants on *real* runs: for
//! arbitrary workloads, solutions, link conditions and shard counts,
//! every traced event's parent span exists in its tree and every
//! span/instant interval nests inside its parent's — the structural
//! contract `TraceTree::check_nesting` formalizes and every trace
//! consumer (the Chrome sink's flow arrows, the critical-path walker)
//! silently relies on.

use proptest::prelude::*;

use svckit::floorctl::{RunParams, Solution};
use svckit::model::Duration;
use svckit::netsim::LinkConfig;
use svckit::protocol::ReliabilityConfig;
use svckit_sweep::{run_sweep, SweepSpec};

const SOLUTIONS: [Solution; 7] = [
    Solution::MwCallback,
    Solution::MwPolling,
    Solution::MwQueue,
    Solution::MwToken,
    Solution::ProtoCallback,
    Solution::ProtoPolling,
    Solution::ProtoToken,
];

/// One random workload cell.
#[derive(Debug, Clone)]
struct Workload {
    solution: Solution,
    subscribers: u64,
    resources: u64,
    rounds: u32,
    seed: u64,
    shards: u32,
    latency_us: u64,
    /// Lossy link + reliability sub-layer (exercises `net.retransmit`
    /// spans); only meaningful for the protocol callback solution.
    lossy: bool,
}

fn workload_strategy() -> impl Strategy<Value = Workload> {
    (
        (0usize..SOLUTIONS.len(), 2u64..5, 1u64..3, 1u32..3),
        (any::<u64>(), 1u32..4, 200u64..2_000, any::<bool>()),
    )
        .prop_map(
            |((solution, subscribers, resources, rounds), (seed, shards, latency_us, lossy))| {
                Workload {
                    solution: SOLUTIONS[solution],
                    subscribers,
                    resources,
                    rounds,
                    seed,
                    shards,
                    latency_us,
                    lossy: lossy && SOLUTIONS[solution] == Solution::ProtoCallback,
                }
            },
        )
}

fn check_workload(w: &Workload) {
    let mut link = LinkConfig::perfect(Duration::from_micros(w.latency_us));
    if w.lossy {
        link = link.with_loss(0.2);
    }
    let params = RunParams::default()
        .subscribers(w.subscribers)
        .resources(w.resources)
        .rounds(w.rounds)
        .link(link)
        .time_cap(Duration::from_secs(120));
    let mut spec = SweepSpec::new("trace-props")
        .solutions([w.solution])
        .seeds([w.seed])
        .shards(w.shards);
    spec = if w.lossy {
        spec.variation_with_reliability(
            "case",
            params,
            ReliabilityConfig::new(Duration::from_millis(8)),
        )
    } else {
        spec.variation("case", params)
    };
    let report = run_sweep(&spec, 1);
    for r in &report.results {
        let trees = svckit::obs::trace_trees(r.obs.events());
        if svckit::obs::sites_enabled() {
            assert!(!trees.is_empty(), "{w:?} produced no traces");
        }
        for tree in trees {
            tree.check_nesting()
                .unwrap_or_else(|e| panic!("{w:?}: {e}"));
            if let Some(b) = tree.breakdown() {
                assert_eq!(
                    b.handler_us + b.queue_us + b.link_us + b.retransmit_us,
                    b.end_to_end_us,
                    "{w:?}: attribution must sum exactly"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every emitted span's parent exists and every interval nests, for
    /// arbitrary solution/workload/link/shard combinations.
    #[test]
    fn span_trees_nest_on_arbitrary_workloads(w in workload_strategy()) {
        check_workload(&w);
    }
}

/// Deterministic pin: a lossy reliable run produces retransmit spans
/// whose trees still nest and whose attribution still sums exactly.
#[test]
fn lossy_reliable_runs_attribute_retransmits() {
    let w = Workload {
        solution: Solution::ProtoCallback,
        subscribers: 3,
        resources: 1,
        rounds: 2,
        seed: 61,
        shards: 1,
        latency_us: 500,
        lossy: true,
    };
    check_workload(&w);
    if !svckit::obs::sites_enabled() {
        return;
    }
    // Re-run to inspect: at 20% loss with go-back-N, some request's
    // critical path must actually cross a retransmitted frame.
    let params = RunParams::default()
        .subscribers(3)
        .resources(1)
        .rounds(2)
        .link(LinkConfig::perfect(Duration::from_micros(500)).with_loss(0.2))
        .time_cap(Duration::from_secs(120));
    let spec = SweepSpec::new("trace-retransmit")
        .solutions([Solution::ProtoCallback])
        .variation_with_reliability(
            "lossy",
            params,
            ReliabilityConfig::new(Duration::from_millis(8)),
        )
        .seeds([61]);
    let report = run_sweep(&spec, 1);
    let retransmits: u64 = report
        .results
        .iter()
        .flat_map(|r| svckit::obs::trace_trees(r.obs.events()))
        .filter_map(|t| t.breakdown())
        .map(|b| b.retransmits)
        .sum();
    assert!(
        retransmits > 0,
        "no retransmit segment on any critical path"
    );
}
