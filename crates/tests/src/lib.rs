//! Integration-test crate for svckit; the tests live in the workspace-level
//! `tests/` directory (wired through `[[test]]` entries in this crate's
//! manifest).
