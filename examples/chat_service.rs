//! A second domain: a chat-room service designed with the service concept
//! and implemented on the publish/subscribe pattern of a JMS-like platform.
//!
//! The service definition comes first ("the definition of services should
//! precede … the specification of protocols"): members `join`, `say`,
//! `hear` and `leave` at their access points, with machine-checked
//! relations between the primitives. The implementation — components over
//! a topic — is then validated against it.
//!
//! Run with: `cargo run --example chat_service`

use svckit::middleware::{Component, DeploymentPlan, MwCtx, MwSystemBuilder, PlatformCaps};
use svckit::model::conformance::{check_trace, CheckOptions};
use svckit::model::{
    Constraint, ConstraintScope, Direction, Duration, PartId, PrimitiveSpec, Sap,
    ServiceDefinition, Value, ValueType,
};
use svckit::netsim::TimerId;

const ROOM_TOPIC: &str = "room";
const MEMBERS: u64 = 4;
const MESSAGES_EACH: u64 = 3;

/// The chat service definition: the paradigm-independent reference point.
fn chat_service() -> ServiceDefinition {
    ServiceDefinition::builder("chat")
        .role("member", 2, usize::MAX)
        .primitive(PrimitiveSpec::new("join", Direction::FromUser))
        .primitive(PrimitiveSpec::new("leave", Direction::FromUser))
        .primitive(
            PrimitiveSpec::new("say", Direction::FromUser)
                .param_id("msgid")
                .param("text", ValueType::Text),
        )
        .primitive(
            PrimitiveSpec::new("hear", Direction::ToUser)
                .param_id("msgid")
                .param("text", ValueType::Text),
        )
        // A member speaks only after joining (non-consuming: one join
        // enables any number of utterances), and leaves only after joining.
        .constraint(Constraint::after("join", "say", ConstraintScope::SameSap))
        .constraint(Constraint::precedes(
            "join",
            "leave",
            ConstraintScope::SameSap,
        ))
        // No double join without leave.
        .constraint(Constraint::at_most_outstanding(
            "join",
            "leave",
            1,
            ConstraintScope::SameSap,
        ))
        // Every utterance is eventually heard by someone (remote liveness,
        // correlated by message id).
        .constraint(
            Constraint::eventually_follows("say", "hear", ConstraintScope::Global).keyed(&[0]),
        )
        .build()
        .expect("the chat service definition is well-formed")
}

fn member_name(k: u64) -> String {
    format!("member-{k}")
}

/// A chat member: publishes a few messages, hears everything on the topic.
struct Member {
    me: u64,
    remaining: u64,
    sent: u64,
    heard: u64,
}

impl Member {
    fn sap(&self) -> Sap {
        Sap::new("member", PartId::new(self.me))
    }

    fn maybe_leave(&mut self, ctx: &mut MwCtx<'_, '_>) {
        // Leave once all own messages are out and everyone's messages have
        // been heard.
        if self.remaining == 0 && self.heard >= MEMBERS * MESSAGES_EACH {
            ctx.record_primitive(self.sap(), "leave", vec![]);
            self.heard = u64::MAX; // never leave twice
        }
    }
}

impl Component for Member {
    fn on_activate(&mut self, ctx: &mut MwCtx<'_, '_>) {
        ctx.record_primitive(self.sap(), "join", vec![]);
        ctx.set_timer(Duration::from_millis(1 + self.me), TimerId(1));
    }

    fn handle_operation(
        &mut self,
        _: &mut MwCtx<'_, '_>,
        _: &str,
        op: &str,
        _: Vec<Value>,
    ) -> Value {
        panic!("chat members provide no interface, got {op}");
    }

    fn on_timer(&mut self, ctx: &mut MwCtx<'_, '_>, _timer: TimerId) {
        self.sent += 1;
        self.remaining -= 1;
        let msgid = self.me * 1000 + self.sent;
        let text = format!("hello {} from member-{}", self.sent, self.me);
        ctx.record_primitive(
            self.sap(),
            "say",
            vec![Value::Id(msgid), Value::Text(text.clone())],
        );
        ctx.publish(ROOM_TOPIC, vec![Value::Id(msgid), Value::Text(text)])
            .expect("room topic is in the plan");
        if self.remaining > 0 {
            ctx.set_timer(Duration::from_millis(2), TimerId(1));
        }
    }

    fn on_delivery(&mut self, ctx: &mut MwCtx<'_, '_>, _source: &str, payload: Vec<Value>) {
        self.heard += 1;
        ctx.record_primitive(self.sap(), "hear", payload);
        self.maybe_leave(ctx);
    }
}

fn main() {
    let service = chat_service();
    println!("service `{}`:", service.name());
    for constraint in service.constraints() {
        println!("  {constraint}");
    }
    println!();

    // Deploy on a JMS-like platform: one topic, every member subscribed.
    let mut plan = DeploymentPlan::builder(PlatformCaps::messaging("jms-like"))
        .broker(PartId::new(100))
        .topic(ROOM_TOPIC, (1..=MEMBERS).map(member_name));
    for k in 1..=MEMBERS {
        plan = plan.component(member_name(k), PartId::new(k), vec![]);
    }
    let plan = plan.build().expect("chat plan is well-formed");

    let mut builder = MwSystemBuilder::new(plan).seed(7);
    for k in 1..=MEMBERS {
        builder = builder.component(
            member_name(k),
            Box::new(Member {
                me: k,
                remaining: MESSAGES_EACH,
                sent: 0,
                heard: 0,
            }),
        );
    }
    let mut system = builder.build().expect("all members are bound");
    let report = system
        .run_to_quiescence(Duration::from_secs(10))
        .expect("the chat system has nodes");

    println!(
        "ran to t={} ({} says, {} hears, {} transport messages)",
        report.end_time(),
        report.trace().count_of("say"),
        report.trace().count_of("hear"),
        report.metrics().messages_sent()
    );

    let check = check_trace(&service, report.trace(), &CheckOptions::default());
    println!("conformance: {check}");
    assert!(check.is_conformant());
    assert_eq!(
        report.trace().count_of("hear") as u64,
        MEMBERS * MEMBERS * MESSAGES_EACH,
        "every member hears every message (including its own)"
    );
}
