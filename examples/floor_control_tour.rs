//! A tour of all seven floor-control solutions: the six of Figures 4 and 6
//! plus the queue-based PSM of Figure 10, under one workload.
//!
//! Run with: `cargo run --example floor_control_tour --release`

use svckit::floorctl::{run_solution, RunParams, Solution};

fn main() {
    let params = RunParams::default()
        .subscribers(6)
        .resources(2)
        .rounds(4)
        .seed(2003);

    println!(
        "workload: {} subscribers × {} rounds over {} resources\n",
        params.subscriber_count(),
        params.round_count(),
        params.resource_count()
    );
    println!(
        "{:<16} {:>5} {:>5} {:>7} {:>10} {:>10} {:>9} {:>10} {:>10}",
        "solution",
        "done",
        "conf",
        "grants",
        "mean-lat",
        "p99-lat",
        "fairness",
        "msgs",
        "msgs/grant"
    );
    println!("{}", "-".repeat(93));

    for solution in Solution::ALL {
        let outcome = run_solution(solution, &params);
        println!(
            "{:<16} {:>5} {:>5} {:>7} {:>10} {:>10} {:>9.3} {:>10} {:>10.1}",
            solution.to_string(),
            outcome.completed,
            outcome.conformant,
            outcome.floor.grants(),
            outcome.floor.mean_latency().to_string(),
            outcome.floor.p99_latency().to_string(),
            outcome.floor.fairness(),
            outcome.transport_messages,
            outcome.messages_per_grant(),
        );
    }

    println!("\nObservations the paper argues for, reproduced:");
    println!(" * all solutions provide the same service (every row is conformant);");
    println!(" * polling trades latency for messages; token pays circulation cost;");
    println!(" * the protocol user part is identical across all three protocols.");
}
