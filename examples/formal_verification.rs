//! The formal basis in action: proving (not just testing) that a service
//! design is correct — "techniques for testing or proving the correctness
//! of service designs" (Section 7).
//!
//! Run with: `cargo run --example formal_verification`

use std::collections::BTreeSet;

use svckit::floorctl::{floor_control_service, floor_event_universe};
use svckit::lts::explorer::{AbstractEvent, ServiceExplorer};
use svckit::lts::LtsBuilder;
use svckit::model::{PartId, Sap, Value};

fn sap(k: u64) -> Sap {
    Sap::new("subscriber", PartId::new(k))
}

fn event(k: u64, primitive: &str, res: u64) -> AbstractEvent {
    AbstractEvent::new(sap(k), primitive, vec![Value::Id(res)])
}

fn main() {
    let service = floor_control_service();

    // 1. Unfold the service's constraint automaton over a small universe
    //    (2 subscribers, 1 resource) and analyse it exhaustively.
    let explorer = ServiceExplorer::new(&service, floor_event_universe(2, 1), 1);
    let service_lts = explorer.to_lts(100_000);
    println!(
        "service automaton: {} states, {} transitions, {} deadlock(s)",
        service_lts.state_count(),
        service_lts.transition_count(),
        service_lts.deadlocks().len()
    );
    assert!(service_lts.deadlocks().is_empty());

    let minimized = service_lts.minimize();
    println!(
        "minimized (strong bisimulation): {} states, {} transitions",
        minimized.state_count(),
        minimized.transition_count()
    );
    assert!(service_lts.trace_equivalent(&minimized).is_ok());

    // 2. Model a *candidate provider design* as an LTS: a strict
    //    lock-server loop per subscriber, interleaved.
    let mut good = LtsBuilder::new();
    // states: (sub1 phase, sub2 phase) with phases idle/req/held — build
    // the product by hand for two subscribers and one resource, where the
    // resource is granted to at most one requester at a time.
    // 0: both idle, 1: s1 requested, 2: s1 held, 3: s2 requested,
    // 4: s2 held, 5: both requested (s1 first), 6: both requested (s2 first),
    // 7: s1 held + s2 requested, 8: s2 held + s1 requested.
    let states: Vec<_> = (0..9).map(|i| good.add_state(format!("g{i}"))).collect();
    good.mark_terminal(states[0]);
    let req = |k| event(k, "request", 1);
    let grant = |k| event(k, "granted", 1);
    let free = |k| event(k, "free", 1);
    good.add_transition(states[0], req(1), states[1]);
    good.add_transition(states[0], req(2), states[3]);
    good.add_transition(states[1], grant(1), states[2]);
    good.add_transition(states[1], req(2), states[5]);
    good.add_transition(states[2], free(1), states[0]);
    good.add_transition(states[2], req(2), states[7]);
    good.add_transition(states[3], grant(2), states[4]);
    good.add_transition(states[3], req(1), states[6]);
    good.add_transition(states[4], free(2), states[0]);
    good.add_transition(states[4], req(1), states[8]);
    good.add_transition(states[5], grant(1), states[7]);
    good.add_transition(states[6], grant(2), states[8]);
    good.add_transition(states[7], free(1), states[3]);
    good.add_transition(states[8], free(2), states[1]);
    let good = good.build(states[0]);

    match explorer.verify_lts(&good) {
        Ok(()) => println!("\ncandidate A: verified — every reachable behaviour is allowed"),
        Err(cex) => panic!("candidate A should verify, got: {cex}"),
    }

    // 3. A buggy design: after a free, the provider re-grants the *old*
    //    holder without a new request.
    let mut bad = LtsBuilder::new();
    let b0 = bad.add_state("b0");
    let b1 = bad.add_state("b1");
    let b2 = bad.add_state("b2");
    let b3 = bad.add_state("b3");
    bad.add_transition(b0, req(1), b1);
    bad.add_transition(b1, grant(1), b2);
    bad.add_transition(b2, free(1), b3);
    bad.add_transition(b3, grant(1), b2); // grant without request!
    let bad = bad.build(b0);

    match explorer.verify_lts(&bad) {
        Ok(()) => panic!("candidate B must be rejected"),
        Err(cex) => {
            println!("candidate B: rejected with shortest counterexample:");
            println!("  {cex}");
            assert_eq!(cex.trace().len(), 4);
        }
    }

    // 4. Candidate A also trace-refines the full service automaton.
    let refined = good.trace_refines(&service_lts);
    println!(
        "\ncandidate A trace-refines the service automaton: {}",
        refined.is_ok()
    );
    assert!(refined.is_ok());

    // 5. Export the minimized automaton for documentation.
    let dot = minimized.to_dot("floor_control_service");
    println!(
        "\nGraphviz export: {} lines (render with `dot -Tsvg`)",
        dot.lines().count()
    );
    let _ = BTreeSet::from([dot]); // silence unused in case of future edits
}
