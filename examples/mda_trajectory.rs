//! The model-driven trajectory of Figure 10, end to end: one
//! platform-independent design of the floor-control service, realized on
//! four concrete platforms — with recursion (Figure 12) wherever the
//! abstract platform does not match — and executed on each.
//!
//! Run with: `cargo run --example mda_trajectory --release`

use svckit::floorctl::RunParams;
use svckit::mda::{catalog, realize, Trajectory, TransformPolicy};

fn main() {
    let pim = catalog::floor_control_pim();
    println!("PIM `{}`:", pim.name());
    println!("  abstract platform: {}", pim.abstract_platform());
    for connector in pim.connectors() {
        println!("  connector {connector}");
    }
    println!();

    let params = RunParams::default().subscribers(4).resources(2).rounds(3);
    let designed = Trajectory::start(pim.service().clone())
        .with_design(pim.clone())
        .expect("the catalogued PIM implements the floor-control service");

    for platform in catalog::all_platforms() {
        println!("=== target: {platform} ===");
        let outcome = designed
            .realize(&platform, TransformPolicy::RecursiveServiceDesign)
            .expect("all catalogued platforms can realize the PIM");
        for record in outcome.records() {
            println!("  {record}");
        }
        println!("  --- deployment descriptor ---");
        for line in outcome.psm().emit_descriptor().lines() {
            println!("  {line}");
        }
        let report =
            realize::realize(outcome.psm(), &params).expect("every PSI must run and conform");
        let run = report.outcome();
        println!(
            "  executed as {}: grants={} mean-latency={} transport-msgs={} conformant={}",
            report.solution(),
            run.floor.grants(),
            run.floor.mean_latency(),
            run.transport_messages,
            run.conformant
        );
        println!();
    }

    println!("=== recursion cost (Figure 12, executable) ===");
    let overhead = realize::adapter_overhead_experiment(&params);
    println!(
        "token ring, oneway pass (native):        {:>8} messages",
        overhead.native_messages
    );
    println!(
        "token ring, pass over request/response:  {:>8} messages",
        overhead.adapted_messages
    );
    println!(
        "adapter overhead factor: {:.2}× (both runs conformant: {})",
        overhead.overhead_factor(),
        overhead.both_conformant
    );
}
