//! Quickstart: the paper's floor-control service, solved in both paradigms,
//! checked against one service definition.
//!
//! Run with: `cargo run --example quickstart`

use svckit::floorctl::{floor_control_service, run_solution, RunParams, Solution};

fn main() {
    // The service definition (Figure 5) is the stable reference point: the
    // primitives that may occur at subscriber access points and the
    // relations between them.
    let service = floor_control_service();
    println!("service `{}`:", service.name());
    for primitive in service.primitives() {
        println!("  {primitive}");
    }
    for constraint in service.constraints() {
        println!("  {constraint}");
    }
    println!();

    // One workload, two paradigms.
    let params = RunParams::default().subscribers(4).resources(2).rounds(3);
    for solution in [Solution::MwCallback, Solution::ProtoCallback] {
        let outcome = run_solution(solution, &params);
        println!(
            "{:<15} completed={} conformant={} grants={} mean-latency={} transport-msgs={}",
            outcome.solution.to_string(),
            outcome.completed,
            outcome.conformant,
            outcome.floor.grants(),
            outcome.floor.mean_latency(),
            outcome.transport_messages,
        );
        assert!(outcome.completed && outcome.conformant);
    }

    println!("\nBoth implementations satisfy the same service definition —");
    println!("the service concept is the paradigm-independent reference point.");
}
