//! Integration: bandwidth-limited lower-level service. The paper abstracts
//! bandwidth away; this ablation shows which solution designs are sensitive
//! to it — the token's constant circulation consumes link capacity even
//! when idle, while the callback protocol only pays per interaction.

use svckit::floorctl::{run_solution, RunParams, Solution};
use svckit::model::Duration;
use svckit::netsim::LinkConfig;

fn params_with(link: LinkConfig) -> RunParams {
    RunParams::default()
        .subscribers(4)
        .resources(2)
        .rounds(3)
        .link(link)
        .seed(71)
        .time_cap(Duration::from_secs(300))
}

#[test]
fn all_solutions_still_complete_on_a_narrow_link() {
    // 5 KB/s: every PDU costs milliseconds of serialization.
    let link = LinkConfig::perfect(Duration::from_millis(1)).with_bandwidth(5_000);
    for solution in [
        Solution::MwCallback,
        Solution::ProtoCallback,
        Solution::ProtoToken,
        Solution::MwQueue,
    ] {
        let outcome = run_solution(solution, &params_with(link.clone()));
        assert!(outcome.completed, "{solution} on narrow link");
        assert!(outcome.conformant, "{solution} on narrow link");
    }
}

#[test]
fn bandwidth_hurts_the_token_more_than_the_callback() {
    let narrow = LinkConfig::perfect(Duration::from_millis(1)).with_bandwidth(5_000);
    let wide = LinkConfig::perfect(Duration::from_millis(1));

    let callback_wide = run_solution(Solution::ProtoCallback, &params_with(wide.clone()));
    let callback_narrow = run_solution(Solution::ProtoCallback, &params_with(narrow.clone()));
    let token_wide = run_solution(Solution::ProtoToken, &params_with(wide));
    let token_narrow = run_solution(Solution::ProtoToken, &params_with(narrow));
    for outcome in [&callback_wide, &callback_narrow, &token_wide, &token_narrow] {
        assert!(
            outcome.completed && outcome.conformant,
            "{}",
            outcome.solution
        );
    }

    // Serialization slows everyone, but the token — whose grants wait on a
    // continuously circulating, byte-hungry PDU — degrades by a larger
    // factor than the callback protocol.
    let callback_slowdown = callback_narrow.floor.mean_latency().as_micros() as f64
        / callback_wide.floor.mean_latency().as_micros().max(1) as f64;
    let token_slowdown = token_narrow.floor.mean_latency().as_micros() as f64
        / token_wide.floor.mean_latency().as_micros().max(1) as f64;
    assert!(
        token_slowdown > callback_slowdown,
        "token slowdown {token_slowdown:.2} should exceed callback slowdown {callback_slowdown:.2}"
    );
}

#[test]
fn serialization_delay_is_visible_in_latency() {
    let wide = run_solution(
        Solution::ProtoCallback,
        &params_with(LinkConfig::perfect(Duration::from_millis(1))),
    );
    let narrow = run_solution(
        Solution::ProtoCallback,
        &params_with(LinkConfig::perfect(Duration::from_millis(1)).with_bandwidth(2_000)),
    );
    assert!(
        narrow.floor.mean_latency() > wide.floor.mean_latency(),
        "narrow {} vs wide {}",
        narrow.floor.mean_latency(),
        wide.floor.mean_latency()
    );
}
