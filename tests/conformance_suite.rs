//! Integration: the formal side — trace conformance, the constraint
//! automaton, LTS refinement, and property-based tests that the checker
//! accepts exactly the right traces.

use proptest::prelude::*;

use svckit::floorctl::{
    floor_control_service, floor_event_universe, run_solution, RunParams, Solution,
};
use svckit::lts::explorer::{AbstractEvent, ServiceExplorer};
use svckit::lts::LtsBuilder;
use svckit::model::conformance::{check_trace, CheckOptions};
use svckit::model::{Instant, PartId, PrimitiveEvent, Sap, Trace, Value};
use svckit::netsim::QueueBackend;

fn sap(k: u64) -> Sap {
    Sap::new("subscriber", PartId::new(k))
}

fn ev(t: u64, k: u64, primitive: &str, res: u64) -> PrimitiveEvent {
    PrimitiveEvent::new(
        Instant::from_micros(t),
        sap(k),
        primitive,
        vec![Value::Id(res)],
    )
}

#[test]
fn mutating_a_real_trace_breaks_conformance() {
    // Take a genuinely conformant execution and inject a second `granted`
    // for a held resource: the checker must catch exactly that.
    let outcome = run_solution(
        Solution::ProtoCallback,
        &RunParams::default().subscribers(3).resources(1).rounds(2),
    );
    assert!(outcome.conformant);
    let service = floor_control_service();

    let mut sabotaged = Trace::new();
    let mut injected = false;
    for event in outcome.trace.events() {
        sabotaged.push(event.clone());
        if !injected && event.primitive() == "granted" {
            // Duplicate grant at a different access point.
            let other = if event.sap().part() == PartId::new(1) {
                2
            } else {
                1
            };
            sabotaged.push(PrimitiveEvent::new(
                event.time(),
                sap(other),
                "granted",
                event.args().to_vec(),
            ));
            injected = true;
        }
    }
    assert!(injected);
    let report = check_trace(&service, &sabotaged, &CheckOptions::default());
    assert!(!report.is_conformant());
    assert!(report
        .violations()
        .iter()
        .any(|v| v.message().contains("already held")));
}

#[test]
fn dropping_a_free_is_caught_as_unfulfilled_liveness() {
    let outcome = run_solution(
        Solution::MwCallback,
        &RunParams::default().subscribers(3).resources(1).rounds(2),
    );
    let service = floor_control_service();
    let truncated: Trace = outcome
        .trace
        .events()
        .iter()
        .filter(|e| {
            // Remove the last free.
            !(e.primitive() == "free"
                && outcome
                    .trace
                    .events()
                    .iter()
                    .rfind(|x| x.primitive() == "free")
                    .map(|last| last == *e)
                    .unwrap_or(false))
        })
        .cloned()
        .collect();
    let report = check_trace(&service, &truncated, &CheckOptions::default());
    assert!(!report.is_conformant());
    assert!(report
        .violations()
        .iter()
        .any(|v| v.message().contains("never followed")));
}

#[test]
fn explorer_accepts_every_solution_trace_as_a_path() {
    // Each recorded trace must be a path through the service's constraint
    // automaton (the state-space view of conformance).
    let service = floor_control_service();
    let params = RunParams::default().subscribers(3).resources(2).rounds(2);
    let universe = floor_event_universe(3, 2);
    let explorer = ServiceExplorer::new(&service, universe, 8);
    for solution in Solution::ALL {
        let outcome = run_solution(solution, &params);
        let mut state = explorer.initial_state();
        for event in outcome.trace.events() {
            let abstract_event = AbstractEvent::new(
                event.sap().clone(),
                event.primitive(),
                event.args().to_vec(),
            );
            state = explorer
                .step(&state, &abstract_event)
                .unwrap_or_else(|v| panic!("{solution}: {v} at {event}"));
        }
        assert!(state.is_quiescent(&explorer), "{solution} left obligations");
    }
}

/// Runs `solution` on the given backend and fingerprints everything the
/// conformance machinery consumes: the recorded service-primitive trace
/// plus the run's floor metrics, via their debug rendering.
fn solution_fingerprint(solution: Solution, backend: QueueBackend) -> String {
    let params = RunParams::default()
        .subscribers(3)
        .resources(2)
        .rounds(2)
        .queue_backend(backend);
    let outcome = run_solution(solution, &params);
    assert!(outcome.conformant, "{solution} must stay conformant");
    format!("{:?} {:?}", outcome.trace, outcome.floor)
}

#[test]
fn every_solution_trace_is_backend_invariant() {
    // One parametrized check per solution: the timer wheel and the
    // reference heap must yield byte-identical traces and metrics.
    for solution in Solution::ALL {
        assert_eq!(
            solution_fingerprint(solution, QueueBackend::Wheel),
            solution_fingerprint(solution, QueueBackend::Heap),
            "{solution} diverged between queue backends"
        );
    }
}

#[test]
fn bad_implementation_lts_is_rejected_with_counterexample() {
    let service = floor_control_service();
    let universe = floor_event_universe(2, 1);
    let explorer = ServiceExplorer::new(&service, universe, 2);

    // An implementation that grants without request and to two holders.
    let mut b = LtsBuilder::new();
    let s0 = b.add_state("s0");
    let s1 = b.add_state("s1");
    let s2 = b.add_state("s2");
    let grant = |k: u64| AbstractEvent::new(sap(k), "granted", vec![Value::Id(1)]);
    let request = |k: u64| AbstractEvent::new(sap(k), "request", vec![Value::Id(1)]);
    b.add_transition(s0, request(1), s1);
    b.add_transition(s1, grant(1), s2);
    b.add_transition(s2, grant(2), s2); // double grant, no request
    let implementation = b.build(s0);

    let err = explorer.verify_lts(&implementation).unwrap_err();
    assert_eq!(err.trace().len(), 3);
    let text = err.to_string();
    assert!(text.contains("granted"), "{text}");
}

proptest! {
    /// Any prefix of events produced by walking the explorer's `allowed`
    /// sets is conformant as a trace: the automaton and the trace checker
    /// agree on the safety fragment.
    #[test]
    fn explorer_paths_are_checker_safe(choices in proptest::collection::vec(0usize..64, 0..40)) {
        let service = floor_control_service();
        let universe = floor_event_universe(2, 2);
        let explorer = ServiceExplorer::new(&service, universe, 2);
        let mut state = explorer.initial_state();
        let mut trace = Trace::new();
        let mut t = 0;
        for pick in choices {
            let allowed = explorer.allowed(&state);
            if allowed.is_empty() {
                break;
            }
            let event = allowed[pick % allowed.len()].clone();
            state = explorer.step(&state, &event).expect("allowed events step");
            t += 1;
            trace.push(PrimitiveEvent::new(
                Instant::from_micros(t),
                event.sap.clone(),
                event.primitive.clone(),
                event.args.clone(),
            ));
        }
        let options = CheckOptions { allow_pending_liveness: true, ..CheckOptions::default() };
        let report = check_trace(&service, &trace, &options);
        prop_assert!(report.is_conformant(), "{report}");
    }

    /// Shuffling grants onto the wrong access point is always caught.
    #[test]
    fn misdirected_grants_are_rejected(res in 1u64..3, thief in 2u64..4) {
        let service = floor_control_service();
        let trace: Trace = [
            ev(1, 1, "request", res),
            ev(2, thief, "granted", res), // grant at a sap that never asked
        ]
        .into_iter()
        .collect();
        let options = CheckOptions { allow_pending_liveness: true, ..CheckOptions::default() };
        let report = check_trace(&service, &trace, &options);
        prop_assert!(!report.is_conformant());
    }
}
