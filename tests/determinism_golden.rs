//! Determinism goldens: a fixed seed must reproduce a byte-identical
//! `SimReport` (trace, metrics, end time) across runs, for the raw
//! simulator and for one solution of each paradigm (middleware and
//! protocol). A hardcoded digest per scenario guards against silent
//! behavioural drift in the event core: if one of these assertions fails
//! after an intentional semantic change to the simulator, re-capture the
//! digest and say so in the changelog.

use svckit::floorctl::{run_solution, RunParams, Solution};
use svckit::lts::{Backend, Engine};
use svckit::model::{Duration, PartId, Sap, Value};
use svckit::netsim::{
    Context, LinkConfig, Payload, Process, QueueBackend, SimConfig, Simulator, TimerId,
};
use svckit_analyze::{all_targets, AnalysisReport, ServicePassOptions};

/// 64-bit FNV-1a over a byte string.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A chatter that exercises loss, duplication, jitter, timers and trace
/// recording in one run.
struct Chatter {
    peer: PartId,
    remaining: u32,
}

impl Process for Chatter {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        if self.remaining > 0 {
            ctx.set_timer(Duration::from_millis(1), TimerId(1));
        }
    }
    fn on_message(&mut self, ctx: &mut Context<'_>, from: PartId, payload: Payload) {
        ctx.record_primitive(
            Sap::new("probe", ctx.id()),
            "recv",
            vec![Value::Id(payload.len() as u64), Value::Id(from.raw())],
        );
    }
    fn on_timer(&mut self, ctx: &mut Context<'_>, _timer: TimerId) {
        ctx.send(self.peer, vec![0u8; 1 + (self.remaining as usize % 7)]);
        self.remaining -= 1;
        if self.remaining > 0 {
            ctx.set_timer(Duration::from_millis(1), TimerId(1));
        }
    }
}

fn netsim_digest(seed: u64, backend: QueueBackend) -> u64 {
    let link = LinkConfig::lossy(Duration::from_millis(2), Duration::from_millis(1), 0.2)
        .with_duplication(0.1);
    let mut sim = Simulator::new(
        SimConfig::new(seed)
            .default_link(link)
            .queue_backend(backend),
    );
    sim.add_process(
        PartId::new(1),
        Box::new(Chatter {
            peer: PartId::new(2),
            remaining: 60,
        }),
    )
    .unwrap();
    sim.add_process(
        PartId::new(2),
        Box::new(Chatter {
            peer: PartId::new(1),
            remaining: 30,
        }),
    )
    .unwrap();
    let report = sim.run_to_quiescence(Duration::from_secs(60)).unwrap();
    assert!(report.is_quiescent());
    fnv1a(format!("{report:?}").as_bytes())
}

fn solution_digest(solution: Solution, seed: u64, backend: QueueBackend) -> u64 {
    let params = RunParams::default()
        .subscribers(4)
        .resources(2)
        .rounds(3)
        .seed(seed)
        .queue_backend(backend);
    let outcome = run_solution(solution, &params);
    assert!(outcome.completed, "{solution:?} workload must complete");
    assert!(outcome.conformant, "{solution:?} trace must conform");
    fnv1a(format!("{outcome:?}").as_bytes())
}

/// Computes a scenario digest under both event-queue backends, asserts
/// they agree, and returns the shared value — every golden below goes
/// through this, so each digest check doubles as a backend-equivalence
/// check.
fn digest_on_both_backends(digest: impl Fn(QueueBackend) -> u64) -> u64 {
    let wheel = digest(QueueBackend::Wheel);
    let heap = digest(QueueBackend::Heap);
    assert_eq!(
        wheel, heap,
        "wheel and heap backends must be observationally identical"
    );
    wheel
}

#[test]
fn netsim_report_is_bit_identical_per_seed() {
    let digest_42 = digest_on_both_backends(|b| netsim_digest(42, b));
    assert_eq!(digest_42, digest_on_both_backends(|b| netsim_digest(42, b)));
    assert_ne!(digest_42, digest_on_both_backends(|b| netsim_digest(43, b)));
}

#[test]
fn netsim_report_matches_golden_digest() {
    // Captured from the zero-copy event core, on the heap queue; the
    // timer wheel must reproduce it bit-for-bit. Must only change with a
    // deliberate, documented change to simulation semantics.
    assert_eq!(
        digest_on_both_backends(|b| netsim_digest(42, b)),
        GOLDEN_NETSIM_SEED42
    );
}

#[test]
fn middleware_solution_is_bit_identical_per_seed() {
    assert_eq!(
        digest_on_both_backends(|b| solution_digest(Solution::MwCallback, 7, b)),
        digest_on_both_backends(|b| solution_digest(Solution::MwCallback, 7, b))
    );
}

#[test]
fn middleware_solution_matches_golden_digest() {
    assert_eq!(
        digest_on_both_backends(|b| solution_digest(Solution::MwCallback, 7, b)),
        GOLDEN_MW_CALLBACK_SEED7
    );
}

#[test]
fn protocol_solution_is_bit_identical_per_seed() {
    assert_eq!(
        digest_on_both_backends(|b| solution_digest(Solution::ProtoCallback, 7, b)),
        digest_on_both_backends(|b| solution_digest(Solution::ProtoCallback, 7, b))
    );
}

#[test]
fn protocol_solution_matches_golden_digest() {
    assert_eq!(
        digest_on_both_backends(|b| solution_digest(Solution::ProtoCallback, 7, b)),
        GOLDEN_PROTO_CALLBACK_SEED7
    );
}

/// The Chatter scenario on a deterministic (perfect) link, at a given
/// shard count. No link randomness is consumed on such links, so the
/// sharded engine must be byte-identical to the sequential one at every
/// shard count — see `svckit-netsim`'s `shard` module docs for the
/// envelope argument.
fn sharded_netsim_digest(seed: u64, shards: u32) -> u64 {
    let mut sim = Simulator::new(
        SimConfig::new(seed)
            .default_link(LinkConfig::perfect(Duration::from_millis(2)))
            .shards(shards),
    );
    sim.add_process(
        PartId::new(1),
        Box::new(Chatter {
            peer: PartId::new(2),
            remaining: 60,
        }),
    )
    .unwrap();
    sim.add_process(
        PartId::new(2),
        Box::new(Chatter {
            peer: PartId::new(1),
            remaining: 30,
        }),
    )
    .unwrap();
    let report = sim.run_to_quiescence(Duration::from_secs(60)).unwrap();
    assert!(report.is_quiescent());
    fnv1a(format!("{report:?}").as_bytes())
}

fn sharded_solution_digest(solution: Solution, seed: u64, shards: u32) -> u64 {
    let params = RunParams::default()
        .subscribers(6)
        .resources(2)
        .rounds(3)
        .seed(seed)
        .link(LinkConfig::perfect(Duration::from_micros(500)))
        .shards(shards);
    let outcome = run_solution(solution, &params);
    assert!(outcome.completed, "{solution:?} workload must complete");
    assert!(outcome.conformant, "{solution:?} trace must conform");
    fnv1a(format!("{outcome:?}").as_bytes())
}

#[test]
fn sharded_netsim_is_byte_identical_to_single() {
    let single = sharded_netsim_digest(42, 1);
    assert_eq!(single, sharded_netsim_digest(42, 2));
    assert_eq!(single, sharded_netsim_digest(42, 4));
    assert_eq!(single, GOLDEN_SHARDED_NETSIM_SEED42);
}

#[test]
fn sharded_solutions_are_byte_identical_to_single() {
    for solution in [Solution::MwCallback, Solution::ProtoCallback] {
        let single = sharded_solution_digest(solution, 7, 1);
        assert_eq!(
            single,
            sharded_solution_digest(solution, 7, 2),
            "{solution:?}"
        );
        assert_eq!(
            single,
            sharded_solution_digest(solution, 7, 4),
            "{solution:?}"
        );
    }
    assert_eq!(
        sharded_solution_digest(Solution::MwCallback, 7, 4),
        GOLDEN_SHARDED_MW_CALLBACK_SEED7
    );
}

/// One analyzer run over every repository target: the full report and the
/// diagnostics-only report, as the analyzer CLI would write them.
fn analyzer_reports(backend: Backend, engine: Engine) -> (String, String) {
    let options = ServicePassOptions {
        backend,
        engine,
        ..ServicePassOptions::default()
    };
    let report = AnalysisReport::run(&all_targets(), &options);
    (report.to_json(), report.to_diag_json())
}

/// Backend-matrix golden: across backend {explicit, symbolic} × engine
/// {dfa, interp}, the diagnostics JSON is byte-identical (one digest for
/// all four cells), and the full `ANALYZE_report.json` is engine-invariant
/// under the explicit backend. Under the symbolic backend the full report
/// carries per-engine `ldd` blocks (node counts legitimately differ with
/// the variable ordering), so each engine pins its own digest.
#[test]
fn analyzer_reports_match_golden_digests_across_backends() {
    let mut diag_digests = Vec::new();
    let mut full_digests = Vec::new();
    for backend in [Backend::Explicit, Backend::Symbolic] {
        for engine in [Engine::Dfa, Engine::Interp] {
            let (full, diag) = analyzer_reports(backend, engine);
            diag_digests.push(fnv1a(diag.as_bytes()));
            full_digests.push(fnv1a(full.as_bytes()));
        }
    }
    assert!(
        diag_digests.iter().all(|&d| d == diag_digests[0]),
        "diagnostics must be byte-identical across the backend × engine matrix"
    );
    assert_eq!(diag_digests[0], GOLDEN_ANALYZE_DIAG);
    assert_eq!(
        full_digests[0], full_digests[1],
        "the explicit full report must be engine-invariant"
    );
    assert_eq!(full_digests[0], GOLDEN_ANALYZE_FULL_EXPLICIT);
    assert_eq!(full_digests[2], GOLDEN_ANALYZE_FULL_SYMBOLIC_DFA);
    assert_eq!(full_digests[3], GOLDEN_ANALYZE_FULL_SYMBOLIC_INTERP);
}

const GOLDEN_NETSIM_SEED42: u64 = 13_274_634_582_242_808_967;
// Sharded-engine goldens: captured on the sequential engine
// (`shards = 1`) over a deterministic link; every shard count must
// reproduce them. See CHANGELOG 0.7.0.
const GOLDEN_SHARDED_NETSIM_SEED42: u64 = 6_719_042_289_313_812_165;
const GOLDEN_SHARDED_MW_CALLBACK_SEED7: u64 = 2_345_727_650_575_110_908;
// Solution digests re-captured when `FloorMetrics` gained the
// `outstanding_at_end` field (a schema addition: the digest covers the
// outcome's Debug form; the netsim digest above was unaffected, so
// simulation semantics did not move). See CHANGELOG 0.5.0.
const GOLDEN_MW_CALLBACK_SEED7: u64 = 2_203_843_261_686_461_361;
const GOLDEN_PROTO_CALLBACK_SEED7: u64 = 16_702_283_514_672_870_395;
// Analyzer backend-matrix goldens: captured with the 0.11.0 symbolic LDD
// backend (full report gained the `backend` key, symbolic runs a
// per-target `ldd` block). The diag digest is shared by all four
// backend × engine cells; the full-report digests are per cell. See
// CHANGELOG 0.11.0.
const GOLDEN_ANALYZE_DIAG: u64 = 2_698_182_463_670_502_418;
const GOLDEN_ANALYZE_FULL_EXPLICIT: u64 = 5_519_753_541_190_147_950;
const GOLDEN_ANALYZE_FULL_SYMBOLIC_DFA: u64 = 12_271_147_205_866_525_074;
const GOLDEN_ANALYZE_FULL_SYMBOLIC_INTERP: u64 = 18_432_330_835_466_162_988;
