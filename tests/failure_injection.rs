//! Integration: failure injection — temporary network partitions between a
//! subscriber and the controller, with and without a reliability sub-layer
//! under the protocol entities.

use svckit::floorctl::proto::{callback, controller_part, subscriber_part};
use svckit::floorctl::{floor_control_service, FloorMetrics, RunParams};
use svckit::model::conformance::{check_trace, CheckOptions};
use svckit::model::Duration;
use svckit::netsim::LinkConfig;
use svckit::protocol::ReliabilityConfig;

fn params() -> RunParams {
    RunParams::default()
        .subscribers(3)
        .resources(2)
        .rounds(3)
        // A datagram link: what the reliability layer is for.
        .link(LinkConfig::reliable_datagram(
            Duration::from_millis(1),
            Duration::from_micros(100),
        ))
        .seed(41)
}

#[test]
fn reliability_layer_rides_out_a_partition() {
    let p = params();
    let mut stack = callback::deploy_with_reliability(
        &p,
        Some(ReliabilityConfig::new(Duration::from_millis(10))),
    );

    // Let the system make some progress…
    let r1 = stack.run_to_quiescence(Duration::from_millis(20)).unwrap();
    let grants_before = r1.trace().count_of("granted");

    // …then cut subscriber 1 off from the controller for a while.
    stack.partition(subscriber_part(1), controller_part());
    let r2 = stack.run_to_quiescence(Duration::from_millis(100)).unwrap();
    // The cut produced drops; retransmissions are piling up.
    assert!(r2.metrics().messages_dropped() > 0);

    // Heal and finish: every round completes and the trace conforms.
    stack.heal(subscriber_part(1), controller_part());
    let mut report = stack.run_to_quiescence(Duration::from_secs(60)).unwrap();
    for _ in 0..10 {
        if report.is_quiescent() {
            break;
        }
        report = stack.run_to_quiescence(Duration::from_secs(60)).unwrap();
    }
    assert!(report.is_quiescent());
    let metrics = FloorMetrics::from_trace(report.trace());
    assert_eq!(metrics.grants(), 9, "all rounds served after healing");
    assert_eq!(metrics.frees(), 9);
    assert!(metrics.grants() as usize >= grants_before);
    assert!(stack.total_counters().retransmissions > 0);

    let check = check_trace(
        &floor_control_service(),
        report.trace(),
        &CheckOptions::default(),
    );
    assert!(check.is_conformant(), "{check}");
}

#[test]
fn without_reliability_a_partition_loses_work() {
    let p = params();
    let mut stack = callback::deploy_with_reliability(&p, None);

    let _ = stack.run_to_quiescence(Duration::from_millis(5)).unwrap();
    stack.partition(subscriber_part(1), controller_part());
    let _ = stack.run_to_quiescence(Duration::from_millis(100)).unwrap();
    stack.heal(subscriber_part(1), controller_part());
    let report = stack.run_to_quiescence(Duration::from_secs(60)).unwrap();

    // Messages were dropped on the floor, so some rounds can never finish:
    // the subscriber is still waiting for a grant that was lost.
    let metrics = FloorMetrics::from_trace(report.trace());
    assert!(
        metrics.grants() < 9,
        "expected lost work, got {} grants",
        metrics.grants()
    );

    // The safety constraints still hold — nothing *wrong* happened, work
    // just stalled. Only liveness is pending.
    let options = CheckOptions {
        allow_pending_liveness: true,
        ..CheckOptions::default()
    };
    let check = check_trace(&floor_control_service(), report.trace(), &options);
    assert!(check.is_conformant(), "{check}");
    assert!(check.pending_obligations() > 0);
}
