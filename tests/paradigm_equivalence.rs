//! Integration: the paper's central comparison (Section 4) — six solutions,
//! two paradigms, one service.

use svckit::floorctl::{run_solution, RunParams, Solution};
use svckit::model::Duration;
use svckit::netsim::LinkConfig;

fn params() -> RunParams {
    RunParams::default()
        .subscribers(4)
        .resources(2)
        .rounds(3)
        .seed(11)
}

#[test]
fn every_solution_implements_the_same_service() {
    for solution in Solution::ALL {
        let outcome = run_solution(solution, &params());
        assert!(outcome.completed, "{solution} incomplete");
        assert!(outcome.conformant, "{solution} non-conformant");
        assert_eq!(outcome.floor.grants(), 12, "{solution}");
        assert_eq!(outcome.floor.requests(), 12, "{solution}");
        assert_eq!(outcome.floor.frees(), 12, "{solution}");
    }
}

#[test]
fn protocol_user_part_is_identical_across_protocols() {
    // The same user workload produces the same *user-side* primitive
    // sequence per subscriber for each protocol solution: what differs is
    // only the timing of grants. Check that the multiset of (sap, request
    // resource) pairs is identical across the three protocols — the user
    // part's decisions do not depend on the protocol.
    let reference = run_solution(Solution::ProtoCallback, &params());
    let mut ref_requests: Vec<String> = reference
        .trace
        .events()
        .iter()
        .filter(|e| e.primitive() == "request")
        .map(|e| format!("{}:{}", e.sap(), e.args()[0]))
        .collect();
    ref_requests.sort();
    for solution in [Solution::ProtoPolling, Solution::ProtoToken] {
        let outcome = run_solution(solution, &params());
        let mut requests: Vec<String> = outcome
            .trace
            .events()
            .iter()
            .filter(|e| e.primitive() == "request")
            .map(|e| format!("{}:{}", e.sap(), e.args()[0]))
            .collect();
        requests.sort();
        assert_eq!(requests, ref_requests, "{solution}");
    }
}

#[test]
fn mutual_exclusion_holds_under_heavy_contention() {
    // Many subscribers, one resource: the remote constraint is the story.
    let p = RunParams::default()
        .subscribers(8)
        .resources(1)
        .rounds(2)
        .hold(Duration::from_millis(1))
        .seed(23);
    for solution in Solution::ALL {
        let outcome = run_solution(solution, &p);
        assert!(
            outcome.conformant,
            "{solution}: {} violations",
            outcome.violations
        );
        assert!(outcome.completed, "{solution}");
    }
}

#[test]
fn solutions_survive_a_wan_link() {
    let p = params()
        .link(LinkConfig::wan())
        .time_cap(Duration::from_secs(300));
    for solution in [
        Solution::MwCallback,
        Solution::ProtoCallback,
        Solution::ProtoToken,
    ] {
        let outcome = run_solution(solution, &p);
        assert!(outcome.completed, "{solution} over WAN");
        assert!(outcome.conformant, "{solution} over WAN");
        // Grant latency reflects the 20 ms link.
        assert!(
            outcome.floor.mean_latency() >= Duration::from_millis(20),
            "{solution}: {}",
            outcome.floor.mean_latency()
        );
    }
}

#[test]
fn fairness_is_high_for_fifo_solutions() {
    let p = RunParams::default()
        .subscribers(6)
        .resources(1)
        .rounds(4)
        .seed(31);
    for solution in [Solution::MwCallback, Solution::ProtoCallback] {
        let outcome = run_solution(solution, &p);
        assert!(
            outcome.floor.fairness() > 0.95,
            "{solution} fairness {}",
            outcome.floor.fairness()
        );
    }
}

#[test]
fn runs_are_deterministic_per_seed_and_differ_across_seeds() {
    let a = run_solution(Solution::ProtoPolling, &params());
    let b = run_solution(Solution::ProtoPolling, &params());
    assert_eq!(a.trace, b.trace);
    assert_eq!(a.transport_messages, b.transport_messages);
    let c = run_solution(Solution::ProtoPolling, &params().seed(12));
    assert_ne!(a.trace, c.trace);
}
