//! Integration: recursive application of the service concept (Figure 12)
//! versus direct transformation — both the model-level accounting and the
//! executable message cost.

use svckit::floorctl::RunParams;
use svckit::mda::{catalog, realize, transform, TransformPolicy};

#[test]
fn recursion_preserves_the_border_direct_collapses_it() {
    let pim = catalog::floor_control_pim();
    let platform = catalog::jms_like();

    let recursive = transform(&pim, &platform, TransformPolicy::RecursiveServiceDesign).unwrap();
    assert!(recursive.border_preserved());
    assert_eq!(recursive.adapter_count(), 3);
    // With the border preserved, the service logic is portable.
    assert_eq!(recursive.portable_artifacts().len(), pim.components().len());

    let direct = transform(&pim, &platform, TransformPolicy::Direct).unwrap();
    assert!(!direct.border_preserved());
    assert_eq!(direct.adapter_count(), 0);
    // With the border collapsed, everything is platform-specific.
    assert!(direct.portable_artifacts().is_empty());
    assert!(direct
        .platform_specific_artifacts()
        .contains(&"coordinator".to_owned()));
}

#[test]
fn recursion_has_modelled_overhead_direct_has_none() {
    let pim = catalog::floor_control_pim();
    let recursive = transform(
        &pim,
        &catalog::mq_series_like(),
        TransformPolicy::RecursiveServiceDesign,
    )
    .unwrap();
    assert!(recursive.total_adapter_overhead() > 0);
    let direct = transform(&pim, &catalog::mq_series_like(), TransformPolicy::Direct).unwrap();
    assert_eq!(direct.total_adapter_overhead(), 0);
}

#[test]
fn executable_adapter_overhead_matches_the_model() {
    // The oneway-over-rr adapter models +1 message per interaction — i.e.
    // each token hop gains a reply, roughly doubling transport messages.
    let params = RunParams::default().subscribers(3).resources(2).rounds(2);
    let overhead = realize::adapter_overhead_experiment(&params);
    assert!(overhead.both_conformant);
    let factor = overhead.overhead_factor();
    assert!(
        (1.4..=2.2).contains(&factor),
        "expected roughly 2× messages, measured {factor:.2}×"
    );
}

#[test]
fn switching_platforms_preserves_portable_artifacts_only_under_recursion() {
    // The portability claim behind "stable reference points": realize on
    // JMS, then switch to MQSeries — under recursion the logic survives;
    // under direct transformation nothing does.
    let pim = catalog::floor_control_pim();
    let jms = transform(
        &pim,
        &catalog::jms_like(),
        TransformPolicy::RecursiveServiceDesign,
    )
    .unwrap();
    let mq = transform(
        &pim,
        &catalog::mq_series_like(),
        TransformPolicy::RecursiveServiceDesign,
    )
    .unwrap();
    assert_eq!(jms.portable_artifacts(), mq.portable_artifacts());
    assert!(!jms.portable_artifacts().is_empty());

    let jms_direct = transform(&pim, &catalog::jms_like(), TransformPolicy::Direct).unwrap();
    assert!(jms_direct.portable_artifacts().is_empty());
}

#[test]
fn unrealizable_platform_fails_cleanly() {
    use svckit::mda::{ConcretePlatform, MdaError, PlatformClass};
    let pim = catalog::floor_control_pim();
    let bare = ConcretePlatform::new("bare-metal", PlatformClass::RpcBased, []);
    let err = transform(&pim, &bare, TransformPolicy::RecursiveServiceDesign).unwrap_err();
    assert!(matches!(err, MdaError::NoRealization { .. }));
}
