//! Integration: the full MDA trajectory (Figures 10 and 11) from service
//! definition to running, conformance-checked implementations on all four
//! concrete platforms.

use svckit::floorctl::{floor_control_service, RunParams};
use svckit::mda::views::{self, ViewKind};
use svckit::mda::{catalog, realize, transform, Milestone, Trajectory, TransformPolicy};

#[test]
fn one_pim_four_platforms_four_running_systems() {
    let designed = Trajectory::start(floor_control_service())
        .with_design(catalog::floor_control_pim())
        .unwrap();
    let params = RunParams::default().subscribers(4).resources(2).rounds(2);

    let mut adapter_counts = Vec::new();
    for platform in catalog::all_platforms() {
        let outcome = designed
            .realize(&platform, TransformPolicy::RecursiveServiceDesign)
            .unwrap();
        assert_eq!(outcome.records().len(), 4);
        assert_eq!(
            outcome.records()[0].milestone(),
            Milestone::ServiceDefinition
        );
        assert_eq!(
            outcome.records()[3].milestone(),
            Milestone::PlatformSpecificImplementation
        );
        adapter_counts.push((platform.name().to_owned(), outcome.psm().adapter_count()));

        let report = realize::realize(outcome.psm(), &params).unwrap();
        assert!(report.outcome().completed, "{}", platform.name());
        assert!(report.outcome().conformant, "{}", platform.name());
        assert_eq!(report.outcome().floor.grants(), 8, "{}", platform.name());
    }

    // The paper's asymmetries: CORBA conforms directly; JavaRMI needs the
    // oneway adapter; both messaging platforms adapt all three connectors.
    let by_name: std::collections::BTreeMap<_, _> = adapter_counts.into_iter().collect();
    assert_eq!(by_name["corba-like"], 0);
    assert_eq!(by_name["javarmi-like"], 1);
    assert_eq!(by_name["jms-like"], 3);
    assert_eq!(by_name["mqseries-like"], 3);
}

#[test]
fn service_definition_is_the_stable_reference_point() {
    // The same service definition validates the implementations on every
    // platform — nothing platform-specific leaks into milestone 1.
    let pim = catalog::floor_control_pim();
    assert_eq!(pim.service().name(), floor_control_service().name());
    assert_eq!(
        pim.service().primitives().len(),
        floor_control_service().primitives().len()
    );
}

#[test]
fn neutral_pim_is_a_valid_trajectory_start() {
    // The "highly abstract and neutral PIM … at the top of the trajectory":
    // its queue-shaped connectors transform without adapters on messaging
    // platforms and with adapters on RPC platforms — the mirror image of
    // the committed PIM.
    let neutral = catalog::floor_control_neutral_pim();
    let jms = transform(
        &neutral,
        &catalog::jms_like(),
        TransformPolicy::RecursiveServiceDesign,
    )
    .unwrap();
    assert_eq!(jms.adapter_count(), 0);
    let corba = transform(
        &neutral,
        &catalog::corba_like(),
        TransformPolicy::RecursiveServiceDesign,
    )
    .unwrap();
    assert_eq!(corba.adapter_count(), 3);
}

#[test]
fn descriptors_are_emitted_for_every_psm() {
    let pim = catalog::floor_control_pim();
    for platform in catalog::all_platforms() {
        let psm = transform(&pim, &platform, TransformPolicy::RecursiveServiceDesign).unwrap();
        let descriptor = psm.emit_descriptor();
        assert!(
            descriptor.contains("component coordinator;"),
            "{descriptor}"
        );
        assert!(descriptor.contains("bind acquire"), "{descriptor}");
    }
}

#[test]
fn views_partition_consistently_for_the_deployed_system() {
    let description = views::floor_control_description(4);
    let fig8 = views::view_of(&description, ViewKind::MiddlewareInteractionSystems);
    let fig9 = views::view_of(&description, ViewKind::ApplicationInteractionSystems);
    // Same elements, different boundary.
    assert_eq!(
        fig8.application_parts().len() + fig8.interaction_system().len(),
        fig9.application_parts().len() + fig9.interaction_system().len(),
    );
    assert!(fig8.application_parts().len() > fig9.application_parts().len());
}
